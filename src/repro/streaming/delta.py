"""The ReachGraph delta overlay: frozen snapshot + in-memory delta graph.

Write-optimized staging in front of read-optimized indexes (the EMBANKS
pattern): contacts observed since the last merge live in an in-memory
:class:`DeltaGraph`; everything older sits in a frozen *snapshot* — a
disk-placed :class:`ContactSnapshotStore` (interval-ordered contact extents
with real IO accounting) plus, optionally, a ReachGraph index rebuilt over the
snapshot prefix for the paper's fast query path.

A query is answered one of two ways:

* **fast path** — no delta or open contact overlaps the query interval, so
  the frozen ReachGraph processor alone is authoritative;
* **overlay path** — the earliest-arrival sweep runs over the union of the
  snapshot contacts overlapping the interval (read from disk, charged IO) and
  the relevant delta/open contacts (in memory, free).

Contacts are clipped at the snapshot watermark when they enter the delta, so
the snapshot and the delta partition every validity interval without overlap;
splitting an interval at the boundary is lossless for reachability because
transmission happens at single instants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import StreamingError
from ..core.types import (
    ObjectId,
    QueryResult,
    ReachabilityQuery,
    TimeInstant,
    TimeInterval,
)
from ..baselines.reference import earliest_arrival
from ..contacts.network import Contact, ContactNetwork
from ..storage import BlockFile, StorageSystem
from ..testing.faults import crash_point
from ..trajectory.model import TrajectoryDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.config import ReachGraphConfig
    from ..reachgraph import (
        DagPatch,
        GraphFrontier,
        PartitionCache,
        ReachGraphIndex,
        ReachGraphQueryProcessor,
    )

__all__ = [
    "DeltaGraph",
    "ContactSnapshotStore",
    "ObjectBloomFilter",
    "ReachGraphDeltaOverlay",
    "SnapshotArtifacts",
]

#: On-disk record of one snapshot contact: (first, second, start, end).
ContactRecord = Tuple[ObjectId, ObjectId, TimeInstant, TimeInstant]

_BLOOM_MIX_A = 0x9E3779B97F4A7C15
_BLOOM_MIX_B = 0xC2B2AE3D27D4EB4F
_MASK64 = (1 << 64) - 1


class ObjectBloomFilter:
    """A stdlib-only Bloom filter over the object ids of one snapshot run.

    Part of the run's zone map: ``may_contain`` answers "could this object
    appear in any contact of the run?" with one-sided error — a ``False``
    is exact (the object is certainly absent), a ``True`` may be a false
    positive that simply falls through to the disk read it would have paid
    anyway.  Hashing is multiplicative (two 64-bit odd constants, ``k``
    derived probes), deterministic across processes — no ``PYTHONHASHSEED``
    dependence — so a filter restored from a manifest answers identically.
    """

    __slots__ = ("num_bits", "num_hashes", "bits")

    def __init__(self, num_bits: int, num_hashes: int, bits: int = 0) -> None:
        if num_bits <= 0:
            raise StreamingError("bloom filter needs a positive bit count")
        if num_hashes <= 0:
            raise StreamingError("bloom filter needs a positive hash count")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.bits = bits

    @classmethod
    def from_objects(
        cls, objects: Iterable[ObjectId], bits_per_object: int = 10
    ) -> "ObjectBloomFilter":
        """Build a filter sized ``bits_per_object`` per distinct object (k=4)."""
        distinct = set(objects)
        num_bits = max(64, bits_per_object * max(1, len(distinct)))
        bloom = cls(num_bits=num_bits, num_hashes=4)
        for object_id in distinct:
            bloom.add(object_id)
        return bloom

    def _probes(self, object_id: ObjectId) -> Iterable[int]:
        base = ((int(object_id) + 1) * _BLOOM_MIX_A) & _MASK64
        step = ((int(object_id) + 1) * _BLOOM_MIX_B | 1) & _MASK64
        for i in range(self.num_hashes):
            mixed = (base + i * step) & _MASK64
            mixed ^= mixed >> 29
            yield mixed % self.num_bits

    def add(self, object_id: ObjectId) -> None:
        """Insert an object id."""
        for probe in self._probes(object_id):
            self.bits |= 1 << probe

    def may_contain(self, object_id: ObjectId) -> bool:
        """``False`` proves absence; ``True`` means "possibly present"."""
        for probe in self._probes(object_id):
            if not (self.bits >> probe) & 1:
                return False
        return True

    def to_manifest(self) -> Dict[str, object]:
        """Picklable description for the run manifest."""
        return {
            "num_bits": self.num_bits,
            "num_hashes": self.num_hashes,
            "bits": self.bits,
        }

    @classmethod
    def from_manifest(cls, manifest: Dict[str, object]) -> "ObjectBloomFilter":
        """Rebuild a filter from :meth:`to_manifest` output."""
        return cls(
            num_bits=int(manifest["num_bits"]),  # type: ignore[arg-type]
            num_hashes=int(manifest["num_hashes"]),  # type: ignore[arg-type]
            bits=int(manifest["bits"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True, slots=True)
class SnapshotArtifacts:
    """The query-side structures a merge rebuilds over the frozen prefix.

    Produced purely from captured :class:`~repro.streaming.service.MergeInputs`
    by :func:`~repro.streaming.service.build_snapshot_artifacts` (safe to run
    in a background thread) and adopted atomically by
    :meth:`ReachGraphDeltaOverlay.adopt_increment`.

    Exactly one of ``processor`` / ``graph_patch`` / ``pending_index`` is set
    when the merge carries a ReachGraph fast path: ``processor`` is a complete
    freshly built and placed index, ``pending_index`` is its deferred-placement
    variant — built in memory (graph-rebuild mode, or the very first merge)
    and written onto the overlay's own device at adoption time so the graph
    survives a close/reopen cycle — and ``graph_patch`` is the
    incremental-mode alternative: a pure description of how the frozen ticks
    extend the *live* index, applied in place at adoption time.  All three are
    ``None`` for services that skip the fast path.
    """

    network: ContactNetwork
    processor: Optional["ReachGraphQueryProcessor"]
    graph_patch: Optional["DagPatch"] = None
    pending_index: Optional["ReachGraphIndex"] = None


class DeltaGraph:
    """In-memory buffer of contact edges accumulated since the last merge."""

    def __init__(self) -> None:
        self._contacts: List[Contact] = []

    def add(self, contact: Contact) -> None:
        """Append one contact edge to the delta."""
        self._contacts.append(contact)

    def contacts_overlapping(self, interval: TimeInterval) -> List[Contact]:
        """Delta contacts whose validity overlaps ``interval``."""
        return [c for c in self._contacts if c.validity.overlaps(interval)]

    def clear(self) -> None:
        """Drop every buffered contact (called after a merge)."""
        self._contacts.clear()

    @property
    def contacts(self) -> List[Contact]:
        """All buffered contacts, in arrival order."""
        return list(self._contacts)

    def __len__(self) -> int:
        return len(self._contacts)


class _SnapshotRun:
    """One sorted run of interval-keyed contact extents (an LSM run).

    ``level`` places the run in the store's size-ratio hierarchy: fresh
    merges append at level 0, and each compaction folds an overfull level's
    runs into a single run one level up, so a run at level ``L`` holds on
    the order of ``fanout**L`` merges' worth of contacts.

    ``min_time``/``max_time``/``bloom`` form the run's *zone map*, written
    with the run and carried through the manifest: the time bounds let a
    read skip the whole run when its span is disjoint from the query
    interval, and the object-id Bloom filter lets the overlay prove an
    object appears in no snapshot contact at all.  Runs restored from
    manifests that predate zone maps carry ``None`` and are never skipped.
    """

    __slots__ = ("file", "max_end", "num_contacts", "level", "min_time", "max_time", "bloom")

    def __init__(
        self,
        file: BlockFile,
        max_end: Dict[int, TimeInstant],
        num_contacts: int,
        level: int = 0,
        min_time: Optional[TimeInstant] = None,
        max_time: Optional[TimeInstant] = None,
        bloom: Optional[ObjectBloomFilter] = None,
    ) -> None:
        self.file = file
        self.max_end = max_end
        self.num_contacts = num_contacts
        self.level = level
        self.min_time = min_time
        self.max_time = max_time
        self.bloom = bloom

    def disjoint_from(self, interval: TimeInterval) -> bool:
        """True when the zone map proves no contact overlaps ``interval``."""
        if self.min_time is None or self.max_time is None:
            return False
        return self.min_time > interval.end or self.max_time < interval.start


class ContactSnapshotStore:
    """Frozen snapshot contacts placed on the block device, LSM-style.

    Contacts live in one or more *runs*.  Within a run, contacts are grouped
    into extents by the temporal grid interval their validity *starts* in,
    written in interval order (the same placement rule ReachGrid uses for its
    cells); each extent remembers the latest validity end among its contacts,
    so a read for a query interval skips extents that cannot overlap it
    without paying any IO.

    Each merge appends the freshly frozen contacts as a new level-0 run
    (:meth:`append_run`) instead of rewriting the whole prefix; once any
    level holds more runs than the configured fanout, :meth:`maybe_compact`
    folds that level's runs into a single run one level up (size-ratio
    leveled compaction — a record at level ``L`` is rewritten only when
    roughly ``fanout**L`` merges' worth of newer contacts have accumulated
    below it, which bounds write amplification to ``O(levels)`` per record
    on unbounded streams where the old all-runs fold paid ``O(merges)``).
    Retired run files leave the storage catalog, so their blocks become
    reclaimable garbage: :attr:`superseded_blocks` counts them until a
    device :meth:`~repro.storage.StorageSystem.reclaim` recycles them, and
    :attr:`records_written` / :attr:`level_records_written` are the
    cumulative write-amplification ledgers the tests compare against the
    rebuild-from-scratch path.
    """

    def __init__(
        self,
        storage: StorageSystem,
        origin: TimeInstant,
        temporal_resolution: int,
        name: str = "snapshot-contacts",
        contacts: Iterable[Contact] = (),
    ) -> None:
        if temporal_resolution <= 0:
            raise StreamingError("temporal_resolution must be positive")
        self._storage = storage
        self._origin = origin
        self._rt = temporal_resolution
        self._name = name
        self._runs: List[_SnapshotRun] = []
        self._run_counter = 0
        self._records_written = 0
        self._level_records_written: Dict[int, int] = {}
        self._superseded_blocks = 0
        self._compactions = 0
        # Read-side zone-map ledgers (in-memory; reads are not durable state).
        self._runs_skipped = 0
        self._blocks_skipped = 0
        initial = list(contacts)
        if initial:
            self.append_run(initial)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _group(self, contacts: Iterable[Contact]) -> Dict[int, List[ContactRecord]]:
        grouped: Dict[int, List[ContactRecord]] = {}
        for contact in contacts:
            index = (contact.validity.start - self._origin) // self._rt
            record: ContactRecord = (
                contact.first,
                contact.second,
                contact.validity.start,
                contact.validity.end,
            )
            grouped.setdefault(index, []).append(record)
        return grouped

    def _write_run(
        self, grouped: Dict[int, List[ContactRecord]], level: int = 0
    ) -> _SnapshotRun:
        self._run_counter += 1
        file = self._storage.new_blockfile(f"{self._name}-run{self._run_counter}")
        max_end: Dict[int, TimeInstant] = {}
        count = 0
        min_time: Optional[TimeInstant] = None
        max_time: Optional[TimeInstant] = None
        objects: set = set()
        for index in sorted(grouped):
            records = sorted(grouped[index], key=lambda r: (r[2], r[0], r[1]))
            file.append_extent(index, records)
            max_end[index] = max(record[3] for record in records)
            count += len(records)
            for first, second, start, end in records:
                if min_time is None or start < min_time:
                    min_time = start
                if max_time is None or end > max_time:
                    max_time = end
                objects.add(first)
                objects.add(second)
        self._records_written += count
        self._level_records_written[level] = (
            self._level_records_written.get(level, 0) + count
        )
        return _SnapshotRun(
            file,
            max_end,
            count,
            level=level,
            min_time=min_time,
            max_time=max_time,
            bloom=ObjectBloomFilter.from_objects(objects),
        )

    def append_run(self, contacts: Iterable[Contact]) -> int:
        """Append one run holding ``contacts``; returns the records written.

        An empty contact set appends nothing (a zero-delta merge is a no-op
        on the store), so back-to-back merges at the same watermark never
        grow the device.
        """
        grouped = self._group(contacts)
        if not grouped:
            return 0
        run = self._write_run(grouped)
        self._runs.append(run)
        return run.num_contacts

    def _fold(self, runs: List[_SnapshotRun], level: int) -> int:
        """Fold ``runs`` into a single fresh run at ``level``.

        The shared compaction core: the merged run is written first, the
        ``compaction-mid`` fault point sits between that write and the
        retirement of the old runs, and retirement both supersedes the old
        extents *and* drops the old run files from the storage catalog so
        their blocks become reclaimable garbage.
        """
        merged: Dict[int, List[ContactRecord]] = {}
        superseded = 0
        for run in runs:
            superseded += run.file.num_blocks
            for index in run.file.extent_keys():
                merged.setdefault(index, []).extend(run.file.read_extent(index))
        folded = self._write_run(merged, level=level)
        # The consolidated run is written but the old runs are still live: a
        # crash here must reopen through the previous manifest, which only
        # names the old runs (the new file is unreferenced garbage).
        crash_point("compaction-mid")
        position = self._runs.index(runs[0])
        retained = [run for run in self._runs if run not in runs]
        retained.insert(min(position, len(retained)), folded)
        self._runs = retained
        for run in runs:
            self._storage.drop_blockfile(run.file.name)
        self._superseded_blocks += superseded
        self._compactions += 1
        return folded.num_contacts

    def compact(self) -> int:
        """Fold every live run into one consolidated top-level run.

        Returns the number of records rewritten (0 when fewer than two runs
        are live — compacting a single run would be pure write amplification).
        The old runs' extents are superseded and their files leave the
        storage catalog, so the blocks they occupied are reclaimable.
        """
        if len(self._runs) <= 1:
            return 0
        top = max(run.level for run in self._runs) + 1
        return self._fold(list(self._runs), top)

    def maybe_compact(self, fanout: int) -> int:
        """Run size-ratio leveled compaction with the given per-level fanout.

        Whenever a level holds more than ``fanout`` runs, its runs fold into
        a single run one level up; the fold cascades while the promotion
        overfills the next level in turn.  Returns the total records
        rewritten (0 when every level was within bounds).
        """
        if fanout <= 0:
            raise StreamingError("compaction fanout must be positive")
        rewritten = 0
        while True:
            levels: Dict[int, List[_SnapshotRun]] = {}
            for run in self._runs:
                levels.setdefault(run.level, []).append(run)
            overfull = [lvl for lvl, runs in levels.items() if len(runs) > fanout]
            if not overfull:
                return rewritten
            level = min(overfull)
            rewritten += self._fold(levels[level], level + 1)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_contacts(self) -> int:
        """Number of contacts held by the live runs."""
        return sum(run.num_contacts for run in self._runs)

    @property
    def num_blocks(self) -> int:
        """Device blocks occupied by the live runs' contact extents."""
        return sum(run.file.num_blocks for run in self._runs)

    @property
    def num_runs(self) -> int:
        """Live runs (1 right after a full fold or a full rebuild)."""
        return len(self._runs)

    @property
    def runs_per_level(self) -> Dict[int, int]:
        """Live run count per level.

        After :meth:`maybe_compact` every value is at most the fanout — the
        leveled invariant the space tests pin down.
        """
        counts: Dict[int, int] = {}
        for run in self._runs:
            counts[run.level] = counts.get(run.level, 0) + 1
        return counts

    @property
    def records_written(self) -> int:
        """Cumulative contact records ever written (the write-amp ledger)."""
        return self._records_written

    @property
    def superseded_blocks(self) -> int:
        """Blocks whose extents were folded away by compactions."""
        return self._superseded_blocks

    @property
    def compactions(self) -> int:
        """Number of compactions performed."""
        return self._compactions

    @property
    def level_records_written(self) -> Dict[int, int]:
        """Cumulative records written per level (the write-amp breakdown)."""
        return dict(self._level_records_written)

    def reset_superseded(self) -> None:
        """Zero the superseded ledger after a device reclaim recycled it."""
        self._superseded_blocks = 0

    @property
    def runs_skipped(self) -> int:
        """Runs whose zone map let a read skip them entirely (read ledger)."""
        return self._runs_skipped

    @property
    def blocks_skipped(self) -> int:
        """Device blocks reads avoided thanks to run zone maps (read ledger)."""
        return self._blocks_skipped

    def may_contain(self, object_id: ObjectId) -> bool:
        """Could any snapshot contact involve ``object_id``?

        ``False`` is exact — every live run's Bloom filter proves the object
        absent, so no snapshot contact can involve it.  Runs restored from
        pre-zone-map manifests have no filter and conservatively answer
        ``True``.
        """
        for run in self._runs:
            if run.bloom is None or run.bloom.may_contain(object_id):
                return True
        return False

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read_overlapping(self, interval: TimeInterval) -> List[Contact]:
        """Read (and charge IO for) the snapshot contacts overlapping ``interval``."""
        contacts: List[Contact] = []
        for run in self._runs:
            if run.disjoint_from(interval):
                # The run's zone map proves its whole time span misses the
                # query interval: skip every extent without any IO.
                self._runs_skipped += 1
                self._blocks_skipped += run.file.num_blocks
                continue
            for index in run.file.extent_keys():
                extent_start = self._origin + index * self._rt
                if extent_start > interval.end:
                    break  # later extents only hold later-starting contacts
                if run.max_end[index] < interval.start:
                    continue  # provably disjoint: skip without IO
                for first, second, start, end in run.file.read_extent(index):
                    validity = TimeInterval(start, end)
                    if validity.overlaps(interval):
                        contacts.append(Contact(first, second, validity))
        return contacts

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, object]:
        """A picklable description sufficient to :meth:`restore` this store."""
        return {
            "origin": self._origin,
            "temporal_resolution": self._rt,
            "name": self._name,
            "run_counter": self._run_counter,
            "records_written": self._records_written,
            "level_records_written": dict(self._level_records_written),
            "superseded_blocks": self._superseded_blocks,
            "compactions": self._compactions,
            "runs": [
                {
                    "file": run.file.name,
                    "max_end": dict(run.max_end),
                    "num_contacts": run.num_contacts,
                    "level": run.level,
                    "min_time": run.min_time,
                    "max_time": run.max_time,
                    "bloom": (
                        run.bloom.to_manifest() if run.bloom is not None else None
                    ),
                }
                for run in self._runs
            ],
        }

    @classmethod
    def restore(
        cls, storage: StorageSystem, manifest: Dict[str, object]
    ) -> "ContactSnapshotStore":
        """Reattach a store to run block files already restored in ``storage``.

        Counterpart of :meth:`manifest` on the reopen path of a persistent
        backend: the extents were re-registered by the storage system's
        catalog; this rebuilds the run list pointing at them.
        """
        store = cls(
            storage,
            origin=manifest["origin"],  # type: ignore[arg-type]
            temporal_resolution=manifest["temporal_resolution"],  # type: ignore[arg-type]
            name=manifest["name"],  # type: ignore[arg-type]
        )
        store._run_counter = manifest["run_counter"]  # type: ignore[assignment]
        store._records_written = manifest["records_written"]  # type: ignore[assignment]
        store._level_records_written = dict(
            manifest.get("level_records_written", {})  # type: ignore[arg-type]
        )
        store._superseded_blocks = manifest["superseded_blocks"]  # type: ignore[assignment]
        store._compactions = manifest["compactions"]  # type: ignore[assignment]
        for entry in manifest["runs"]:  # type: ignore[union-attr]
            bloom_manifest = entry.get("bloom")
            store._runs.append(
                _SnapshotRun(
                    storage.blockfile(entry["file"]),
                    dict(entry["max_end"]),
                    entry["num_contacts"],
                    level=entry.get("level", 0),  # type: ignore[union-attr]
                    min_time=entry.get("min_time"),
                    max_time=entry.get("max_time"),
                    bloom=(
                        ObjectBloomFilter.from_manifest(bloom_manifest)
                        if bloom_manifest is not None
                        else None
                    ),
                )
            )
        # A crash between a fold's run write and the manifest commit leaves
        # the folded run's file in the durable catalog but out of the run
        # list.  Drop those orphans so they don't count as live forever.
        referenced = {run.file.name for run in store._runs}
        prefix = f"{store._name}-run"
        for name in storage.blockfile_names():
            if name.startswith(prefix) and name not in referenced:
                storage.drop_blockfile(name)
        return store


class ReachGraphDeltaOverlay:
    """Snapshot + delta pair answering queries over the full ingested prefix."""

    def __init__(self, storage: StorageSystem) -> None:
        from ..reachgraph.query import PartitionCache

        self._storage = storage
        self._delta = DeltaGraph()
        self._store: Optional[ContactSnapshotStore] = None
        self._network: Optional[ContactNetwork] = None
        self._processor = None  # ReachGraphQueryProcessor over the snapshot
        self._snapshot_watermark: Optional[TimeInstant] = None
        self._version = 0
        self._graph_version = 0
        # ReachGraph write-amplification ledger (mirrors the snapshot store's
        # records ledger): vertex records ever written by builds/increments,
        # full rebuilds performed, and partition blocks superseded by rewrites
        # of indexes this overlay has since retired.
        self._graph_records_written = 0
        self._graph_rebuilds = 0
        self._graph_superseded_base = 0
        # Cross-query partition cache, shared by every processor this overlay
        # ever attaches; invalidated whenever the graph mutates.  The serving
        # layer resizes it from StreamingConfig.partition_cache_size.
        self._partition_cache = PartitionCache()
        # Query-path counters retired processors fold into (a rebuild-mode
        # merge swaps the processor, which would otherwise reset them).
        self._label_rejections_base = 0
        self._label_prunes_base = 0
        self._bloom_rejections = 0

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------
    def add_contact(self, contact: Contact) -> None:
        """Buffer a newly closed contact, clipped past the snapshot watermark."""
        clipped = self._clip_past_snapshot(contact)
        if clipped is not None:
            self._delta.add(clipped)

    def _clip_past_snapshot(self, contact: Contact) -> Optional[Contact]:
        if self._snapshot_watermark is None:
            return contact
        # None when entirely covered by the snapshot.
        return contact.clipped(self._snapshot_watermark + 1, contact.validity.end)

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------
    def install_snapshot(
        self,
        dataset: TrajectoryDataset,
        contacts: Sequence[Contact],
        watermark: TimeInstant,
        temporal_resolution: int,
        distance_threshold: float,
        build_reachgraph: bool = True,
        graph_config: Optional["ReachGraphConfig"] = None,
    ) -> None:
        """Replace the snapshot with a fresh one over the full prefix.

        ``contacts`` must be the complete contact set of the prefix (the
        ingestor's closed plus open-clipped contacts); the delta is emptied
        because everything it held is now part of the snapshot.

        This is the *rebuild* write path: the entire prefix is rewritten as a
        single fresh run.  The LSM path (:meth:`adopt_increment`) appends only
        the freshly frozen contacts instead.
        """
        self._version += 1
        self._store = ContactSnapshotStore(
            self._storage,
            origin=dataset.horizon.start,
            temporal_resolution=temporal_resolution,
            name=f"snapshot-contacts-v{self._version}",
            contacts=contacts,
        )
        self._network = ContactNetwork(dataset, contacts, distance_threshold)
        self._retire_processor()
        if build_reachgraph:
            from ..reachgraph import ReachGraphIndex, ReachGraphQueryProcessor

            # Placed on this overlay's own storage system (versioned so
            # successive installs never collide on a file name), which is
            # what lets close/reopen restore the graph fast path.
            self._graph_version += 1
            index = ReachGraphIndex(
                dataset,
                config=graph_config,
                contact_config=None,
                contact_network=self._network,
                storage=self._storage,
                name=f"graph-v{self._graph_version}",
            ).build()
            self._processor = ReachGraphQueryProcessor(
                index, partition_cache=self._partition_cache
            )
            self._graph_records_written += index.records_written
            self._graph_rebuilds += 1
        self._partition_cache.invalidate()
        self._snapshot_watermark = watermark
        self._delta.clear()

    def adopt_increment(
        self,
        artifacts: "SnapshotArtifacts",
        new_contacts: Sequence[Contact],
        watermark: TimeInstant,
        origin: TimeInstant,
        temporal_resolution: int,
    ) -> int:
        """Advance the snapshot by appending one run (the LSM write path).

        ``new_contacts`` is the freshly frozen slice of the prefix — every
        contact of ``[origin, watermark]`` clipped past the current snapshot
        watermark (clipping is re-applied here to defend the partition
        invariant).  ``artifacts`` carries the purely rebuilt query-side
        structures (contact network, and either a fresh ReachGraph processor
        or a :class:`~repro.reachgraph.DagPatch` for the live one), which is
        what keeps the expensive half of a merge off-thread-safe while this
        method — the only part touching live state — stays cheap: one run
        append, a few assignments, and (in incremental graph mode) a patch
        application proportional to the delta.  Returns the records written
        to the snapshot store.
        """
        # The graph half goes first: apply_increment validates the patch
        # against the live index (a stale patch raises) before anything else
        # mutates, so a rejected adoption leaves the store, network, delta,
        # and watermark exactly as they were.
        if artifacts.graph_patch is not None:
            if self._processor is None:
                raise StreamingError(
                    "a graph patch was built but no live ReachGraph index "
                    "exists to apply it to"
                )
            report = self._processor.index.apply_increment(
                artifacts.graph_patch,
                artifacts.network.dataset,
                contact_network=artifacts.network,
            )
            self._graph_records_written += report.records_written
        elif artifacts.pending_index is not None:
            from ..reachgraph import ReachGraphQueryProcessor

            # The deferred build ran off-thread against no storage; place it
            # on this overlay's device here, on the adopting thread, under a
            # versioned name so successive graph rebuilds never collide.
            self._retire_processor()
            self._graph_version += 1
            artifacts.pending_index.place(
                self._storage, name=f"graph-v{self._graph_version}"
            )
            self._processor = ReachGraphQueryProcessor(
                artifacts.pending_index, partition_cache=self._partition_cache
            )
            self._graph_records_written += artifacts.pending_index.records_written
            self._graph_rebuilds += 1
        else:
            self._retire_processor()
            self._processor = artifacts.processor
            if artifacts.processor is not None:
                artifacts.processor.partition_cache = self._partition_cache
                self._graph_records_written += artifacts.processor.index.records_written
                self._graph_rebuilds += 1
        # Whatever branch ran, the graph the cache was stamped against is
        # gone (patched in place or swapped): start a fresh generation.
        self._partition_cache.invalidate()
        if self._store is None:
            self._version += 1
            self._store = ContactSnapshotStore(
                self._storage,
                origin=origin,
                temporal_resolution=temporal_resolution,
                name=f"snapshot-contacts-v{self._version}",
            )
        frozen = [
            clipped
            for clipped in (self._clip_past_snapshot(c) for c in new_contacts)
            if clipped is not None
        ]
        appended = self._store.append_run(frozen)
        self._network = artifacts.network
        self._snapshot_watermark = watermark
        self._delta.clear()
        return appended

    def _retire_processor(self) -> None:
        """Fold the outgoing index's garbage counter into the overlay's base.

        When the retired index lives on this overlay's own device, its
        partition file and object index also leave the storage catalog: the
        replacement index supersedes them completely, so keeping them
        cataloged would pin their blocks as live forever and starve
        :meth:`~repro.storage.StorageSystem.reclaim`.
        """
        if self._processor is not None:
            index = self._processor.index
            self._label_rejections_base += self._processor.label_rejections
            self._label_prunes_base += self._processor.label_frontier_prunes
            self._graph_superseded_base += index.superseded_blocks
            if index.is_placed and index.storage is self._storage:
                retired = 0
                partitions = f"{index.name}-partitions"
                if self._storage.has_blockfile(partitions):
                    retired += self._storage.drop_blockfile(partitions)
                table = f"{index.name}-object-index"
                if self._storage.has_hashtable(table):
                    retired += self._storage.drop_hashtable(table)
                self._graph_superseded_base += retired
        self._processor = None

    def graph_frontier(self) -> Optional["GraphFrontier"]:
        """The live index's resumable maintenance state, or ``None``.

        ``None`` when no merge has installed a ReachGraph fast path yet — the
        next merge then performs the initial full build.  Must be captured on
        the thread that owns this overlay (the streaming service's
        ``prepare_merge`` does), after which the pure patch computation may
        run anywhere.
        """
        if self._processor is None:
            return None
        return self._processor.index.frontier()

    def maybe_compact(self, fanout: int) -> int:
        """Run the store's leveled compaction with per-level ``fanout``.

        Returns the records rewritten (0 when every level was within bounds
        or no snapshot store exists yet).
        """
        if self._store is None:
            return 0
        return self._store.maybe_compact(fanout)

    def note_device_reclaimed(self) -> None:
        """Zero the overlay-level superseded ledgers after a device reclaim.

        The garbage those ledgers counted no longer exists on the device:
        the store's compaction ledger and the overlay's retired-graph base
        reset so the next reclaim trigger measures only garbage created
        *after* this one.  (The live index's own counter is the partition
        file's ledger, which the reclaim's block remap already zeroed.)
        """
        if self._store is not None:
            self._store.reset_superseded()
        self._graph_superseded_base = 0

    def configure_partition_cache(self, capacity: int) -> None:
        """Resize the cross-query partition cache (the service applies config).

        Replaces the cache with a fresh one of ``capacity`` partitions and
        re-attaches it to the live processor (``0`` disables caching).
        """
        from ..reachgraph.query import PartitionCache

        self._partition_cache = PartitionCache(capacity=capacity)
        if self._processor is not None:
            self._processor.partition_cache = self._partition_cache

    def note_graph_mutated(self) -> None:
        """Invalidate the partition cache after an out-of-band graph mutation.

        Merge adoptions invalidate automatically; the service calls this
        after maintenance that rewrites partitions without an adoption — a
        frontier repack retires fragment partition ids in place.
        """
        self._partition_cache.invalidate()

    # ------------------------------------------------------------------
    # persistence (used by the service's close/reopen cycle)
    # ------------------------------------------------------------------
    def attach_snapshot_store(
        self, store: Optional[ContactSnapshotStore], watermark: Optional[TimeInstant]
    ) -> None:
        """Adopt a restored snapshot store (reopen path; no query fast path)."""
        self._store = store
        self._snapshot_watermark = watermark

    def restore_delta(self, contacts: Iterable[Contact]) -> None:
        """Replace the delta with persisted contacts (they are already clipped)."""
        self._delta.clear()
        for contact in contacts:
            self._delta.add(contact)

    def graph_catalog(self) -> Optional[Dict[str, object]]:
        """Manifest fragment describing the persisted graph fast path.

        ``None`` when no fast path exists or when the live index sits on a
        storage system other than this overlay's own (a processor someone
        attached out-of-band cannot be reopened from this device).
        """
        if self._processor is None:
            return None
        index = self._processor.index
        if not index.is_placed or index.storage is not self._storage:
            return None
        return {"index": index.catalog(), "version": self._graph_version}

    def attach_graph(
        self,
        processor: "ReachGraphQueryProcessor",
        network: ContactNetwork,
        version: int,
    ) -> None:
        """Adopt a restored graph fast path (reopen path).

        ``network`` is the snapshot prefix's contact network — the fast-path
        applicability check reads its dataset — and ``version`` resumes the
        graph file-name counter so later rebuilds never collide on a name.
        """
        self._processor = processor
        processor.partition_cache = self._partition_cache
        self._partition_cache.invalidate()
        self._network = network
        self._graph_version = version

    # ------------------------------------------------------------------
    # introspection (merge policies read these)
    # ------------------------------------------------------------------
    @property
    def delta_size(self) -> int:
        """Number of contacts buffered in the delta graph."""
        return len(self._delta)

    @property
    def delta_contacts(self) -> List[Contact]:
        """The buffered delta contacts, in arrival order."""
        return self._delta.contacts

    @property
    def snapshot_size(self) -> int:
        """Number of contacts in the frozen snapshot (0 before the first merge)."""
        return self._store.num_contacts if self._store is not None else 0

    @property
    def snapshot_watermark(self) -> Optional[TimeInstant]:
        """Watermark of the last merge, or ``None`` before the first one."""
        return self._snapshot_watermark

    @property
    def snapshot_store(self) -> Optional[ContactSnapshotStore]:
        """The on-device snapshot contact store (``None`` before any merge)."""
        return self._store

    @property
    def snapshot_runs(self) -> int:
        """Live runs in the snapshot store (0 before any merge)."""
        return self._store.num_runs if self._store is not None else 0

    @property
    def snapshot_records_written(self) -> int:
        """Contact records this overlay's store has ever written."""
        return self._store.records_written if self._store is not None else 0

    @property
    def snapshot_superseded_blocks(self) -> int:
        """Store blocks orphaned by compactions (0 before any merge)."""
        return self._store.superseded_blocks if self._store is not None else 0

    @property
    def snapshot_compactions(self) -> int:
        """Compactions the snapshot store has performed (0 before any merge)."""
        return self._store.compactions if self._store is not None else 0

    @property
    def snapshot_level_records(self) -> Dict[int, int]:
        """Per-level records written by the store (empty before any merge)."""
        return self._store.level_records_written if self._store is not None else {}

    @property
    def graph_records_written(self) -> int:
        """Vertex records the overlay's ReachGraph builds/patches ever wrote."""
        return self._graph_records_written

    @property
    def graph_rebuilds(self) -> int:
        """Full ReachGraph builds performed (incremental mode: just the first)."""
        return self._graph_rebuilds

    @property
    def graph_superseded_blocks(self) -> int:
        """Partition blocks orphaned by increment rewrites (graph garbage)."""
        current = (
            self._processor.index.superseded_blocks
            if self._processor is not None
            else 0
        )
        return self._graph_superseded_base + current

    @property
    def partition_cache(self) -> "PartitionCache":
        """The overlay-owned cross-query partition cache."""
        return self._partition_cache

    @property
    def label_rejections(self) -> int:
        """Queries the label fast path answered unreachable without traversal."""
        current = (
            self._processor.label_rejections if self._processor is not None else 0
        )
        return self._label_rejections_base + current

    @property
    def label_frontier_prunes(self) -> int:
        """Frontier expansions the labels let the traversal skip."""
        current = (
            self._processor.label_frontier_prunes
            if self._processor is not None
            else 0
        )
        return self._label_prunes_base + current

    @property
    def label_relabels(self) -> int:
        """Incremental label-patch passes the live index has run."""
        labels = self._live_labels()
        return labels.incremental_passes if labels is not None else 0

    @property
    def label_full_relabels(self) -> int:
        """Full relabels forced by oversized dirty sets on the live index."""
        labels = self._live_labels()
        return labels.full_relabels if labels is not None else 0

    def _live_labels(self):  # -> Optional[ReachLabelIndex]
        if self._processor is None:
            return None
        return self._processor.index.labels

    @property
    def bloom_rejections(self) -> int:
        """Union-path queries answered unreachable by the run Bloom filters."""
        return self._bloom_rejections

    @property
    def snapshot_runs_skipped(self) -> int:
        """Runs the store's zone maps let reads skip (0 before any merge)."""
        return self._store.runs_skipped if self._store is not None else 0

    @property
    def snapshot_blocks_skipped(self) -> int:
        """Blocks the store's zone maps let reads skip (0 before any merge)."""
        return self._store.blocks_skipped if self._store is not None else 0

    @property
    def amplification(self) -> float:
        """Delta size relative to the snapshot size (the merge trigger ratio)."""
        return self.delta_size / max(1, self.snapshot_size)

    @property
    def snapshot_network(self) -> Optional[ContactNetwork]:
        """The snapshot's contact network (for inspection)."""
        return self._network

    @property
    def has_reachgraph(self) -> bool:
        """True when the snapshot carries a ReachGraph fast path."""
        return self._processor is not None

    @property
    def snapshot_processor(self) -> Optional["ReachGraphQueryProcessor"]:
        """The ReachGraph fast-path processor (``None`` without one).

        In incremental graph mode this is the *same* object across merges —
        its index is patched in place — which is what the maintenance tests
        pin down.
        """
        return self._processor

    @property
    def storage(self) -> StorageSystem:
        """The storage system charged for this overlay's snapshot reads."""
        return self._storage

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def collect_contacts(
        self, interval: TimeInterval, open_contacts: Sequence[Contact] = ()
    ) -> List[Contact]:
        """Every snapshot ∪ delta ∪ open contact overlapping ``interval``.

        Snapshot contacts are read from disk (IO charged to this overlay's
        storage system); ``open_contacts`` are clipped past the snapshot
        watermark so nothing is counted twice.  The sharded coordinator unions
        the result across shard overlays before running the arrival sweep.
        """
        contacts: List[Contact] = []
        if self._store is not None:
            contacts.extend(self._store.read_overlapping(interval))
        contacts.extend(self._delta.contacts_overlapping(interval))
        for contact in open_contacts:
            clipped = self._clip_past_snapshot(contact)
            if clipped is not None and clipped.validity.overlaps(interval):
                contacts.append(clipped)
        return contacts

    def evaluate(
        self, query: ReachabilityQuery, open_contacts: Sequence[Contact] = ()
    ) -> QueryResult:
        """Answer ``query`` over snapshot ∪ delta ∪ open contacts.

        ``open_contacts`` are the ingestor's still-open runs clipped to the
        current watermark; they are clipped again past the snapshot watermark
        here so nothing is counted twice.
        """
        interval = query.interval
        delta_relevant = self._delta.contacts_overlapping(interval)
        open_relevant: List[Contact] = []
        for contact in open_contacts:
            clipped = self._clip_past_snapshot(contact)
            if clipped is not None and clipped.validity.overlaps(interval):
                open_relevant.append(clipped)

        if (
            self._processor is not None
            and not delta_relevant
            and not open_relevant
            and self._fast_path_applicable(query)
        ):
            return self._processor.evaluate(query)

        if query.source != query.destination and self._bloom_rejects(
            query, delta_relevant, open_relevant
        ):
            # Sound negative: some endpoint appears in no snapshot run (the
            # Bloom filters prove it) and in no relevant delta/open contact,
            # so no temporal path can start (or end) at it — answer without
            # reading a single snapshot block.
            self._bloom_rejections += 1
            return QueryResult(
                reachable=False,
                earliest_time=None,
                io=0.0,
                random_ios=0,
                sequential_ios=0,
                cpu_seconds=0.0,
                visited=0,
            )

        cpu_started = time.process_time()
        self._storage.reset_for_query()
        io_before = self._storage.snapshot()
        contacts = self.collect_contacts(interval, open_contacts=open_contacts)

        if query.source == query.destination:
            reachable, earliest = True, interval.start
        else:
            arrival = earliest_arrival(
                contacts, query.source, interval, destination=query.destination
            )
            earliest = arrival.get(query.destination)
            reachable = earliest is not None

        io_delta = self._storage.charge_since(io_before)
        return QueryResult(
            reachable=reachable,
            earliest_time=earliest,
            io=io_delta.normalized(self._storage.config.sequential_cost),
            random_ios=io_delta.random_reads,
            sequential_ios=io_delta.sequential_reads,
            cpu_seconds=time.process_time() - cpu_started,
            visited=len(contacts),
        )

    def _bloom_rejects(
        self,
        query: ReachabilityQuery,
        delta_relevant: Sequence[Contact],
        open_relevant: Sequence[Contact],
    ) -> bool:
        """True when an endpoint provably touches no contact the union path sees.

        A temporal path must leave the source through a contact involving it
        (and likewise arrive at the destination), and every contact the union
        path consults lives in the snapshot store, the relevant delta slice,
        or the relevant open slice.  Bloom ``False`` answers are exact, so
        this rejection never flips a reachable query; false positives just
        fall through to the normal read path.
        """
        for endpoint in (query.source, query.destination):
            if self._store is not None and self._store.may_contain(endpoint):
                continue
            if any(
                contact.first == endpoint or contact.second == endpoint
                for contact in delta_relevant
            ):
                continue
            if any(
                contact.first == endpoint or contact.second == endpoint
                for contact in open_relevant
            ):
                continue
            return True
        return False

    def _fast_path_applicable(self, query: ReachabilityQuery) -> bool:
        dataset = self._network.dataset if self._network is not None else None
        return (
            dataset is not None
            and query.source in dataset
            and query.destination in dataset
            and query.interval.intersection(dataset.horizon) is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReachGraphDeltaOverlay(snapshot={self.snapshot_size}, "
            f"delta={self.delta_size}, watermark={self._snapshot_watermark})"
        )
