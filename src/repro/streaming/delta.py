"""The ReachGraph delta overlay: frozen snapshot + in-memory delta graph.

Write-optimized staging in front of read-optimized indexes (the EMBANKS
pattern): contacts observed since the last merge live in an in-memory
:class:`DeltaGraph`; everything older sits in a frozen *snapshot* — a
disk-placed :class:`ContactSnapshotStore` (interval-ordered contact extents
with real IO accounting) plus, optionally, a ReachGraph index rebuilt over the
snapshot prefix for the paper's fast query path.

A query is answered one of two ways:

* **fast path** — no delta or open contact overlaps the query interval, so
  the frozen ReachGraph processor alone is authoritative;
* **overlay path** — the earliest-arrival sweep runs over the union of the
  snapshot contacts overlapping the interval (read from disk, charged IO) and
  the relevant delta/open contacts (in memory, free).

Contacts are clipped at the snapshot watermark when they enter the delta, so
the snapshot and the delta partition every validity interval without overlap;
splitting an interval at the boundary is lossless for reachability because
transmission happens at single instants.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import StreamingError
from ..core.types import (
    ObjectId,
    QueryResult,
    ReachabilityQuery,
    TimeInstant,
    TimeInterval,
)
from ..baselines.reference import earliest_arrival
from ..contacts.network import Contact, ContactNetwork
from ..storage import StorageSystem
from ..trajectory.model import TrajectoryDataset

__all__ = ["DeltaGraph", "ContactSnapshotStore", "ReachGraphDeltaOverlay"]

#: On-disk record of one snapshot contact: (first, second, start, end).
ContactRecord = Tuple[ObjectId, ObjectId, TimeInstant, TimeInstant]


class DeltaGraph:
    """In-memory buffer of contact edges accumulated since the last merge."""

    def __init__(self) -> None:
        self._contacts: List[Contact] = []

    def add(self, contact: Contact) -> None:
        """Append one contact edge to the delta."""
        self._contacts.append(contact)

    def contacts_overlapping(self, interval: TimeInterval) -> List[Contact]:
        """Delta contacts whose validity overlaps ``interval``."""
        return [c for c in self._contacts if c.validity.overlaps(interval)]

    def clear(self) -> None:
        """Drop every buffered contact (called after a merge)."""
        self._contacts.clear()

    @property
    def contacts(self) -> List[Contact]:
        """All buffered contacts, in arrival order."""
        return list(self._contacts)

    def __len__(self) -> int:
        return len(self._contacts)


class ContactSnapshotStore:
    """Frozen snapshot contacts placed on the simulated disk.

    Contacts are grouped into extents by the temporal grid interval their
    validity *starts* in, written in interval order (the same placement rule
    ReachGrid uses for its cells).  Each extent remembers the latest validity
    end among its contacts, so a read for a query interval skips extents that
    cannot overlap it without paying any IO.
    """

    def __init__(
        self,
        storage: StorageSystem,
        contacts: Iterable[Contact],
        origin: TimeInstant,
        temporal_resolution: int,
        name: str = "snapshot-contacts",
    ) -> None:
        if temporal_resolution <= 0:
            raise StreamingError("temporal_resolution must be positive")
        self._storage = storage
        self._origin = origin
        self._rt = temporal_resolution
        self._file = storage.new_blockfile(name)
        self._max_end: Dict[int, TimeInstant] = {}
        grouped: Dict[int, List[ContactRecord]] = {}
        count = 0
        for contact in contacts:
            index = (contact.validity.start - origin) // temporal_resolution
            record: ContactRecord = (
                contact.first,
                contact.second,
                contact.validity.start,
                contact.validity.end,
            )
            grouped.setdefault(index, []).append(record)
            count += 1
        for index in sorted(grouped):
            records = sorted(grouped[index], key=lambda r: (r[2], r[0], r[1]))
            self._file.append_extent(index, records)
            self._max_end[index] = max(record[3] for record in records)
        self._num_contacts = count

    @property
    def num_contacts(self) -> int:
        """Number of contacts held by the snapshot."""
        return self._num_contacts

    @property
    def num_blocks(self) -> int:
        """Disk blocks occupied by the snapshot's contact extents."""
        return self._file.num_blocks

    def read_overlapping(self, interval: TimeInterval) -> List[Contact]:
        """Read (and charge IO for) the snapshot contacts overlapping ``interval``."""
        contacts: List[Contact] = []
        for index in self._file.extent_keys():
            extent_start = self._origin + index * self._rt
            if extent_start > interval.end:
                break  # later extents only hold later-starting contacts
            if self._max_end[index] < interval.start:
                continue  # provably disjoint: skip without IO
            for first, second, start, end in self._file.read_extent(index):
                validity = TimeInterval(start, end)
                if validity.overlaps(interval):
                    contacts.append(Contact(first, second, validity))
        return contacts


class ReachGraphDeltaOverlay:
    """Snapshot + delta pair answering queries over the full ingested prefix."""

    def __init__(self, storage: StorageSystem) -> None:
        self._storage = storage
        self._delta = DeltaGraph()
        self._store: Optional[ContactSnapshotStore] = None
        self._network: Optional[ContactNetwork] = None
        self._processor = None  # ReachGraphQueryProcessor over the snapshot
        self._snapshot_watermark: Optional[TimeInstant] = None
        self._version = 0

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------
    def add_contact(self, contact: Contact) -> None:
        """Buffer a newly closed contact, clipped past the snapshot watermark."""
        clipped = self._clip_past_snapshot(contact)
        if clipped is not None:
            self._delta.add(clipped)

    def _clip_past_snapshot(self, contact: Contact) -> Optional[Contact]:
        if self._snapshot_watermark is None:
            return contact
        # None when entirely covered by the snapshot.
        return contact.clipped(self._snapshot_watermark + 1, contact.validity.end)

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------
    def install_snapshot(
        self,
        dataset: TrajectoryDataset,
        contacts: Sequence[Contact],
        watermark: TimeInstant,
        temporal_resolution: int,
        distance_threshold: float,
        build_reachgraph: bool = True,
    ) -> None:
        """Replace the snapshot with a fresh one over the full prefix.

        ``contacts`` must be the complete contact set of the prefix (the
        ingestor's closed plus open-clipped contacts); the delta is emptied
        because everything it held is now part of the snapshot.
        """
        self._version += 1
        self._store = ContactSnapshotStore(
            self._storage,
            contacts,
            origin=dataset.horizon.start,
            temporal_resolution=temporal_resolution,
            name=f"snapshot-contacts-v{self._version}",
        )
        self._network = ContactNetwork(dataset, contacts, distance_threshold)
        self._processor = None
        if build_reachgraph:
            from ..reachgraph import ReachGraphIndex, ReachGraphQueryProcessor

            index = ReachGraphIndex(
                dataset,
                contact_config=None,
                contact_network=self._network,
            ).build()
            self._processor = ReachGraphQueryProcessor(index)
        self._snapshot_watermark = watermark
        self._delta.clear()

    # ------------------------------------------------------------------
    # introspection (merge policies read these)
    # ------------------------------------------------------------------
    @property
    def delta_size(self) -> int:
        """Number of contacts buffered in the delta graph."""
        return len(self._delta)

    @property
    def snapshot_size(self) -> int:
        """Number of contacts in the frozen snapshot (0 before the first merge)."""
        return self._store.num_contacts if self._store is not None else 0

    @property
    def snapshot_watermark(self) -> Optional[TimeInstant]:
        """Watermark of the last merge, or ``None`` before the first one."""
        return self._snapshot_watermark

    @property
    def amplification(self) -> float:
        """Delta size relative to the snapshot size (the merge trigger ratio)."""
        return self.delta_size / max(1, self.snapshot_size)

    @property
    def snapshot_network(self) -> Optional[ContactNetwork]:
        """The snapshot's contact network (for inspection)."""
        return self._network

    @property
    def has_reachgraph(self) -> bool:
        """True when the snapshot carries a ReachGraph fast path."""
        return self._processor is not None

    @property
    def storage(self) -> StorageSystem:
        """The storage system charged for this overlay's snapshot reads."""
        return self._storage

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def collect_contacts(
        self, interval: TimeInterval, open_contacts: Sequence[Contact] = ()
    ) -> List[Contact]:
        """Every snapshot ∪ delta ∪ open contact overlapping ``interval``.

        Snapshot contacts are read from disk (IO charged to this overlay's
        storage system); ``open_contacts`` are clipped past the snapshot
        watermark so nothing is counted twice.  The sharded coordinator unions
        the result across shard overlays before running the arrival sweep.
        """
        contacts: List[Contact] = []
        if self._store is not None:
            contacts.extend(self._store.read_overlapping(interval))
        contacts.extend(self._delta.contacts_overlapping(interval))
        for contact in open_contacts:
            clipped = self._clip_past_snapshot(contact)
            if clipped is not None and clipped.validity.overlaps(interval):
                contacts.append(clipped)
        return contacts

    def evaluate(
        self, query: ReachabilityQuery, open_contacts: Sequence[Contact] = ()
    ) -> QueryResult:
        """Answer ``query`` over snapshot ∪ delta ∪ open contacts.

        ``open_contacts`` are the ingestor's still-open runs clipped to the
        current watermark; they are clipped again past the snapshot watermark
        here so nothing is counted twice.
        """
        interval = query.interval
        delta_relevant = self._delta.contacts_overlapping(interval)
        open_relevant: List[Contact] = []
        for contact in open_contacts:
            clipped = self._clip_past_snapshot(contact)
            if clipped is not None and clipped.validity.overlaps(interval):
                open_relevant.append(clipped)

        if (
            self._processor is not None
            and not delta_relevant
            and not open_relevant
            and self._fast_path_applicable(query)
        ):
            return self._processor.evaluate(query)

        cpu_started = time.process_time()
        self._storage.reset_for_query()
        io_before = self._storage.snapshot()
        contacts = self.collect_contacts(interval, open_contacts=open_contacts)

        if query.source == query.destination:
            reachable, earliest = True, interval.start
        else:
            arrival = earliest_arrival(
                contacts, query.source, interval, destination=query.destination
            )
            earliest = arrival.get(query.destination)
            reachable = earliest is not None

        io_delta = self._storage.charge_since(io_before)
        return QueryResult(
            reachable=reachable,
            earliest_time=earliest,
            io=io_delta.normalized(self._storage.config.sequential_cost),
            random_ios=io_delta.random_reads,
            sequential_ios=io_delta.sequential_reads,
            cpu_seconds=time.process_time() - cpu_started,
            visited=len(contacts),
        )

    def _fast_path_applicable(self, query: ReachabilityQuery) -> bool:
        dataset = self._network.dataset if self._network is not None else None
        return (
            dataset is not None
            and query.source in dataset
            and query.destination in dataset
            and query.interval.intersection(dataset.horizon) is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReachGraphDeltaOverlay(snapshot={self.snapshot_size}, "
            f"delta={self.delta_size}, watermark={self._snapshot_watermark})"
        )
