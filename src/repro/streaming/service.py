"""The queryable streaming facade: ``ingest(events)`` / ``query(q)``.

:class:`StreamingReachabilityService` ties the subsystem together: a
:class:`~repro.streaming.ingest.StreamIngestor` keeps grid cells and the
incremental contact join current, a
:class:`~repro.streaming.delta.ReachGraphDeltaOverlay` answers queries over
snapshot ∪ delta, a merge policy decides when the delta is folded into a new
snapshot, and an LRU query-result cache — invalidated whenever the watermark
advances — absorbs repeated queries between arrivals.

Correctness contract: at any point of the stream, ``query(q)`` returns the
same reachability verdict as the batch ``reference`` evaluator run over the
contact network of the ingested prefix.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..core.config import (
    ContactConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from ..core.errors import StreamingError
from ..core.types import QueryResult, ReachabilityQuery, TimeInstant
from ..contacts.network import Contact
from ..storage import StorageSystem
from ..trajectory.model import TrajectoryDataset
from .delta import ReachGraphDeltaOverlay
from .events import SampleEvent, StreamBatch
from .ingest import StreamIngestor
from .policy import MergeContext, make_policy
from .source import replay

__all__ = [
    "MergeInputs",
    "QueryResultCache",
    "StreamingReachabilityService",
    "StreamingStats",
    "build_snapshot_overlay",
]


class QueryResultCache:
    """A small LRU cache of query results with hit/miss accounting.

    Shared by the single-shard service, the sharded coordinator, and the
    asyncio front-end; a ``capacity`` of 0 disables caching entirely (every
    lookup is a miss that is not counted).  All mutating operations take an
    internal lock, so an invalidation racing a lookup (a background merge
    swapping a snapshot in while queries run) can never corrupt the LRU
    structure or serve an entry that survived the invalidation.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[ReachabilityQuery, QueryResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._generation = 0
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        """True when the cache actually stores results."""
        return self.capacity > 0

    @property
    def generation(self) -> int:
        """Number of invalidations so far (a snapshot-swap observability hook)."""
        return self._generation

    def get(self, query: ReachabilityQuery) -> Optional[QueryResult]:
        """The cached result for ``query``, bumping its recency, or ``None``."""
        if not self.enabled:
            return None
        with self._lock:
            cached = self._entries.get(query)
            if cached is not None:
                self._entries.move_to_end(query)
                self.hits += 1
                return cached
            self.misses += 1
            return None

    def put(self, query: ReachabilityQuery, result: QueryResult) -> None:
        """Store a result, evicting least-recently-used entries past capacity."""
        if not self.enabled:
            return
        with self._lock:
            self._entries[query] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept, the generation bumps)."""
        with self._lock:
            self._entries.clear()
            self._generation += 1

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True, slots=True)
class MergeInputs:
    """The frozen prefix a merge folds into a new snapshot.

    Captured synchronously by :meth:`StreamingReachabilityService.prepare_merge`
    and then handed to :func:`build_snapshot_overlay`, which touches nothing
    but these values — that purity is what makes it legal to run the build in
    a background thread while the ingestor keeps moving (the asyncio service
    does exactly that).
    """

    prefix: TrajectoryDataset
    contacts: Tuple[Contact, ...]
    bound: TimeInstant
    temporal_resolution: int
    distance_threshold: float
    build_reachgraph: bool


def build_snapshot_overlay(
    inputs: MergeInputs, storage_config: StorageConfig | None = None
) -> ReachGraphDeltaOverlay:
    """Build a fresh snapshot overlay from captured merge inputs.

    Pure function of ``inputs`` (plus the storage parameters): it allocates
    its own :class:`~repro.storage.StorageSystem`, reads no live ingestor
    state, and mutates nothing it did not create — safe to run off-thread
    while ingestion and queries continue against the old overlay.  The result
    becomes live only when
    :meth:`StreamingReachabilityService.adopt_snapshot` swaps it in.
    """
    overlay = ReachGraphDeltaOverlay(StorageSystem(storage_config))
    overlay.install_snapshot(
        inputs.prefix,
        inputs.contacts,
        watermark=inputs.bound,
        temporal_resolution=inputs.temporal_resolution,
        distance_threshold=inputs.distance_threshold,
        build_reachgraph=inputs.build_reachgraph,
    )
    return overlay


@dataclass(frozen=True, slots=True)
class StreamingStats:
    """Counters describing the state of a streaming service."""

    events: int
    batches: int
    merges: int
    queries: int
    cache_hits: int
    cache_misses: int
    watermark: Optional[TimeInstant]
    snapshot_watermark: Optional[TimeInstant]
    delta_contacts: int
    snapshot_contacts: int
    flushed_intervals: int
    ingest_seconds: float

    @property
    def events_per_second(self) -> float:
        """Ingest throughput over the life of the service."""
        if self.ingest_seconds <= 0:
            return 0.0
        return self.events / self.ingest_seconds


class StreamingReachabilityService:
    """Accepts an ordered event stream and stays queryable throughout."""

    def __init__(
        self,
        environment_size: Tuple[float, float],
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
        name: str = "stream",
        auto_merge: bool = True,
    ) -> None:
        self.contact_config = contact_config or ContactConfig()
        self.grid_config = grid_config or ReachGridConfig()
        self.streaming_config = streaming_config or StreamingConfig()
        self.name = name
        # The sharded coordinator turns auto_merge off and triggers per-shard
        # merges itself, bounded at the global low-watermark.
        self.auto_merge = auto_merge
        self._storage_config = storage_config
        self._ingestor = StreamIngestor(
            environment_size,
            contact_config=self.contact_config,
            grid_config=self.grid_config,
            storage_config=storage_config,
            name=name,
        )
        # The overlay gets its own storage system so per-query IO accounting
        # is not polluted by the ingestor's ongoing grid writes.
        self._overlay = ReachGraphDeltaOverlay(StorageSystem(storage_config))
        self._policy = make_policy(self.streaming_config)
        self._cache = QueryResultCache(self.streaming_config.query_cache_size)
        self._consumed_closed = 0
        self._intervals_at_merge = 0
        self._batches = 0
        self._merges = 0
        self._queries = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        dataset: TrajectoryDataset,
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> "StreamingReachabilityService":
        """A service sized for (but not yet fed with) a dataset's environment."""
        return cls(
            environment_size=dataset.environment_size,
            contact_config=contact_config,
            grid_config=grid_config,
            streaming_config=streaming_config,
            storage_config=storage_config,
            name=f"{dataset.name}-stream",
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        events: StreamBatch | Iterable[SampleEvent],
        prevalidated: bool = False,
    ) -> int:
        """Ingest one batch (or a bare iterable of sample events).

        A bare iterable is wrapped into a batch whose watermark is its latest
        sample time.  Returns the number of events ingested; afterwards the
        service is immediately queryable at the new watermark.
        ``prevalidated`` is forwarded to the ingestor (see
        :meth:`StreamIngestor.ingest`).
        """
        batch = (
            events
            if isinstance(events, StreamBatch)
            else StreamBatch.of(tuple(events))
        )
        before = self._ingestor.watermark
        count = self._ingestor.ingest(batch, prevalidated=prevalidated)
        self._batches += 1
        self._sync_delta()
        if self._ingestor.watermark != before:
            self._cache.clear()
        if self.auto_merge:
            self._maybe_merge()
        return count

    def drain(self, source) -> StreamingStats:
        """Ingest an entire stream source (or dataset / canned name) to its end."""
        if isinstance(source, (TrajectoryDataset, str)):
            source = replay(source, batch_ticks=self.streaming_config.batch_ticks)
        for batch in source.batches():
            self.ingest(batch)
        return self.stats

    def _sync_delta(self) -> None:
        for contact in self._ingestor.closed_contacts_since(self._consumed_closed):
            self._overlay.add_contact(contact)
        self._consumed_closed = self._ingestor.num_closed_contacts

    def merge_context(self, low_watermark: Optional[TimeInstant] = None) -> MergeContext:
        """The :class:`MergeContext` a merge policy would see right now."""
        return MergeContext(
            delta_contacts=self._overlay.delta_size,
            snapshot_contacts=self._overlay.snapshot_size,
            intervals_since_merge=self._ingestor.num_flushed_intervals
            - self._intervals_at_merge,
            watermark=self._ingestor.watermark,
            snapshot_watermark=self._overlay.snapshot_watermark,
            low_watermark=low_watermark,
        )

    def _maybe_merge(self) -> None:
        watermark = self._ingestor.watermark
        if watermark is None or watermark == self._overlay.snapshot_watermark:
            return
        if self._policy.should_merge(self.merge_context()):
            self.merge()

    def merge(self, through: Optional[TimeInstant] = None) -> None:
        """Fold the delta into a fresh snapshot over the ingested prefix.

        Normally triggered by the merge policy; exposed so callers can force a
        merge (e.g. before a read-heavy phase).  ``through`` bounds the frozen
        prefix at an earlier instant than the watermark (the sharded
        coordinator passes the global low-watermark); closed contacts
        extending past the bound stay in the delta, clipped at the boundary.

        The three phases — :meth:`prepare_merge` (capture the frozen prefix),
        :func:`build_snapshot_overlay` (pure rebuild), :meth:`adopt_snapshot`
        (atomic swap) — are public so the asyncio front-end can run the
        middle phase in a background thread; this method simply runs them
        back to back.
        """
        inputs = self.prepare_merge(through=through)
        overlay = build_snapshot_overlay(inputs, self._storage_config)
        self.adopt_snapshot(overlay, inputs.bound)

    def prepare_merge(self, through: Optional[TimeInstant] = None) -> MergeInputs:
        """Capture the frozen prefix a merge would fold into a snapshot.

        Synchronous and cheap relative to the rebuild: materializes the
        prefix dataset and its contact set through ``min(through, watermark)``.
        The returned :class:`MergeInputs` shares no mutable state with the
        ingestor, so a :func:`build_snapshot_overlay` over it may run
        concurrently with further ingestion.
        """
        watermark = self._ingestor.watermark
        if watermark is None:
            raise StreamingError("nothing to merge: no batch ingested yet")
        bound = watermark if through is None else min(through, watermark)
        self._sync_delta()
        return MergeInputs(
            prefix=self._ingestor.prefix_dataset(through=bound),
            contacts=tuple(self._ingestor.contacts_through(bound)),
            bound=bound,
            temporal_resolution=self.grid_config.temporal_resolution,
            distance_threshold=self.contact_config.distance_threshold,
            build_reachgraph=self.streaming_config.build_reachgraph_on_merge,
        )

    def adopt_snapshot(
        self, overlay: ReachGraphDeltaOverlay, bound: TimeInstant
    ) -> None:
        """Atomically swap a freshly built snapshot overlay in.

        Restages the unfrozen halves of every closed contact extending past
        ``bound`` into the new overlay's delta (``add_contact`` clips them at
        the snapshot watermark), so the swap is correct even when ingestion
        advanced past the captured prefix while the overlay was being built.
        No step between the swap and the cache invalidation yields control,
        which is what keeps concurrently running queries consistent: they see
        either the old overlay or the fully adopted new one, never a mixture.
        """
        self._overlay = overlay
        for contact in self._ingestor.closed_contacts:
            if contact.validity.end > bound:
                self._overlay.add_contact(contact)
        self._consumed_closed = self._ingestor.num_closed_contacts
        self._intervals_at_merge = self._ingestor.num_flushed_intervals
        self._merges += 1
        self._cache.clear()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer a reachability query over everything ingested so far."""
        self._queries += 1
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        result = self._overlay.evaluate(
            query, open_contacts=self._ingestor.open_contacts()
        )
        self._cache.put(query, result)
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[TimeInstant]:
        """Last complete tick of the stream (``None`` before the first batch)."""
        return self._ingestor.watermark

    @property
    def ingestor(self) -> StreamIngestor:
        """The underlying ingestor (grid cells, contacts, counters)."""
        return self._ingestor

    @property
    def overlay(self) -> ReachGraphDeltaOverlay:
        """The snapshot + delta overlay answering queries."""
        return self._overlay

    @property
    def num_merges(self) -> int:
        """Merges performed so far."""
        return self._merges

    @property
    def stats(self) -> StreamingStats:
        """A snapshot of the service's counters."""
        return StreamingStats(
            events=self._ingestor.num_events,
            batches=self._batches,
            merges=self._merges,
            queries=self._queries,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            watermark=self._ingestor.watermark,
            snapshot_watermark=self._overlay.snapshot_watermark,
            delta_contacts=self._overlay.delta_size,
            snapshot_contacts=self._overlay.snapshot_size,
            flushed_intervals=self._ingestor.num_flushed_intervals,
            ingest_seconds=self._ingestor.ingest_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingReachabilityService(name={self.name!r}, "
            f"watermark={self.watermark}, merges={self._merges}, "
            f"delta={self._overlay.delta_size})"
        )
