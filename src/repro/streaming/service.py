"""The queryable streaming facade: ``ingest(events)`` / ``query(q)``.

:class:`StreamingReachabilityService` ties the subsystem together: a
:class:`~repro.streaming.ingest.StreamIngestor` keeps grid cells and the
incremental contact join current, a
:class:`~repro.streaming.delta.ReachGraphDeltaOverlay` answers queries over
snapshot ∪ delta, a merge policy decides when the delta is folded into a new
snapshot, and an LRU query-result cache — invalidated whenever the watermark
advances — absorbs repeated queries between arrivals.

Correctness contract: at any point of the stream, ``query(q)`` returns the
same reachability verdict as the batch ``reference`` evaluator run over the
contact network of the ingested prefix.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from ..core.config import (
    ContactConfig,
    ReachGraphConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from ..core.errors import StreamingError
from ..core.types import QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from ..contacts.network import Contact, ContactNetwork
from ..storage import BACKEND_FILE_SUFFIX, StorageSystem
from ..testing.faults import crash_point
from ..trajectory.model import TrajectoryDataset
from .delta import ContactSnapshotStore, ReachGraphDeltaOverlay, SnapshotArtifacts
from .events import SampleEvent, StreamBatch
from .ingest import StreamIngestor
from .policy import MergeContext, make_policy
from .source import replay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..reachgraph import GraphFrontier
    from .parallel import MergeExecutor

__all__ = [
    "MergeBuild",
    "MergeInputs",
    "QueryResultCache",
    "SnapshotQueryService",
    "StreamingReachabilityService",
    "StreamingStats",
    "build_merge",
    "build_snapshot_artifacts",
    "build_snapshot_overlay",
]

#: Metadata key under which a service persists its overlay manifest.
_OVERLAY_MANIFEST_KEY = "overlay-manifest"

#: Distinguishes the storage-system names of successive rebuild-mode overlay
#: builds, so two rebuilds against the same persistent ``storage_dir`` never
#: collide on a backing file.
_REBUILD_NAMES = itertools.count(1)


class QueryResultCache:
    """A small LRU cache of query results with hit/miss accounting.

    Shared by the single-shard service, the sharded coordinator, and the
    asyncio front-end; a ``capacity`` of 0 disables caching entirely (every
    lookup is a miss that is not counted).  All mutating operations take an
    internal lock, so an invalidation racing a lookup (a background merge
    swapping a snapshot in while queries run) can never corrupt the LRU
    structure or serve an entry that survived the invalidation.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[ReachabilityQuery, QueryResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._generation = 0
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        """True when the cache actually stores results."""
        return self.capacity > 0

    @property
    def generation(self) -> int:
        """Number of invalidations so far (a snapshot-swap observability hook)."""
        return self._generation

    def get(self, query: ReachabilityQuery) -> Optional[QueryResult]:
        """The cached result for ``query``, bumping its recency, or ``None``."""
        if not self.enabled:
            return None
        with self._lock:
            cached = self._entries.get(query)
            if cached is not None:
                self._entries.move_to_end(query)
                self.hits += 1
                return cached
            self.misses += 1
            return None

    def put(self, query: ReachabilityQuery, result: QueryResult) -> None:
        """Store a result, evicting least-recently-used entries past capacity."""
        if not self.enabled:
            return
        with self._lock:
            self._entries[query] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept, the generation bumps)."""
        with self._lock:
            self._entries.clear()
            self._generation += 1

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True, slots=True)
class MergeInputs:
    """The frozen prefix a merge folds into a new snapshot.

    Captured synchronously by :meth:`StreamingReachabilityService.prepare_merge`
    and then handed to :func:`build_merge`, which touches nothing but these
    values — that purity is what makes it legal to run the build in a
    background thread while the ingestor keeps moving (the asyncio service
    does exactly that).

    ``contacts`` is the complete contact set of the prefix ``[origin, bound]``;
    ``new_contacts`` is its freshly frozen slice — the same contacts clipped
    past the previous snapshot watermark — which is all the LSM write path
    appends to the snapshot store (empty in rebuild mode, which rewrites the
    full prefix and never reads the slice).  ``mode`` records which write
    path the service's config selected when the inputs were captured.

    ``graph_mode`` records the ReachGraph maintenance mode, and
    ``graph_frontier`` carries the live index's captured resumable state when
    the merge should *patch* the graph instead of rebuilding it — ``None``
    when no index exists yet (the first merge builds one), when the config
    asks for rebuilds, or when the service skips the fast path entirely.
    ``graph_labels``/``label_dirty_ratio`` freeze the query-fast-path knobs
    the built index must honour (captured alongside the prefix so a config
    change between prepare and adopt cannot split-brain the build).
    """

    prefix: TrajectoryDataset
    contacts: Tuple[Contact, ...]
    new_contacts: Tuple[Contact, ...]
    bound: TimeInstant
    temporal_resolution: int
    distance_threshold: float
    build_reachgraph: bool
    mode: str
    graph_mode: str = "incremental"
    graph_frontier: Optional["GraphFrontier"] = None
    graph_labels: bool = True
    label_dirty_ratio: float = 0.25


@dataclass(frozen=True, slots=True)
class MergeBuild:
    """The off-thread-built half of a merge, ready for adoption.

    Exactly one field is set: ``overlay`` for rebuild mode (a complete fresh
    overlay whose snapshot store was rewritten from scratch), ``artifacts``
    for LSM mode (just the rebuilt query-side structures; the snapshot store
    is advanced in place by a cheap run append at adopt time).
    """

    overlay: Optional[ReachGraphDeltaOverlay]
    artifacts: Optional[SnapshotArtifacts]


def build_snapshot_overlay(
    inputs: MergeInputs, storage_config: StorageConfig | None = None
) -> ReachGraphDeltaOverlay:
    """Build a fresh snapshot overlay from captured merge inputs (rebuild mode).

    Pure function of ``inputs`` (plus the storage parameters): it allocates
    its own :class:`~repro.storage.StorageSystem`, reads no live ingestor
    state, and mutates nothing it did not create — safe to run off-thread
    while ingestion and queries continue against the old overlay.  The result
    becomes live only when
    :meth:`StreamingReachabilityService.adopt_snapshot` swaps it in.
    """
    storage = StorageSystem(
        storage_config, name=f"overlay-rebuild-{next(_REBUILD_NAMES)}", attach=False
    )
    overlay = ReachGraphDeltaOverlay(storage)
    overlay.install_snapshot(
        inputs.prefix,
        inputs.contacts,
        watermark=inputs.bound,
        temporal_resolution=inputs.temporal_resolution,
        distance_threshold=inputs.distance_threshold,
        build_reachgraph=inputs.build_reachgraph,
        graph_config=_graph_config(inputs),
    )
    return overlay


def _graph_config(inputs: MergeInputs) -> ReachGraphConfig:
    """The ReachGraph configuration frozen into a merge's inputs."""
    return ReachGraphConfig(
        interval_labels=inputs.graph_labels,
        label_dirty_ratio=inputs.label_dirty_ratio,
    )


def build_snapshot_artifacts(inputs: MergeInputs) -> SnapshotArtifacts:
    """Rebuild the query-side snapshot structures from captured merge inputs.

    The pure (off-thread-safe) half of an LSM-mode merge: the contact network
    over the full prefix and, when configured, the ReachGraph fast path.  In
    incremental graph mode (a :attr:`MergeInputs.graph_frontier` was
    captured) the fast path is *not* rebuilt — the frozen slice is replayed
    over the frontier into a :class:`~repro.reachgraph.DagPatch` whose cost
    is proportional to the appended ticks, and the live index is patched at
    adoption time.  No storage the service owns is touched here — the
    snapshot store append (and the patch application) happen later, inside
    :meth:`StreamingReachabilityService.adopt_merge`.
    """
    network = ContactNetwork(inputs.prefix, inputs.contacts, inputs.distance_threshold)
    pending_index = None
    graph_patch = None
    if inputs.build_reachgraph:
        if inputs.graph_frontier is not None:
            from ..reachgraph import compute_graph_patch

            graph_patch = compute_graph_patch(
                inputs.graph_frontier, inputs.new_contacts, inputs.bound
            )
        else:
            from ..reachgraph import ReachGraphIndex

            # Deferred placement: the build runs in memory (possibly on a
            # background thread); the adopting thread later writes it onto
            # the overlay's own device, where close/reopen can find it.
            pending_index = ReachGraphIndex(
                inputs.prefix,
                config=_graph_config(inputs),
                contact_config=None,
                contact_network=network,
                defer_placement=True,
            ).build()
    return SnapshotArtifacts(
        network=network,
        processor=None,
        graph_patch=graph_patch,
        pending_index=pending_index,
    )


def build_merge(
    inputs: MergeInputs, storage_config: StorageConfig | None = None
) -> MergeBuild:
    """Run the pure build phase of a merge, honouring ``inputs.mode``.

    Dispatches to :func:`build_snapshot_overlay` (rebuild) or
    :func:`build_snapshot_artifacts` (lsm); either way the result is adopted
    atomically by :meth:`StreamingReachabilityService.adopt_merge`.
    """
    if inputs.mode == "rebuild":
        return MergeBuild(
            overlay=build_snapshot_overlay(inputs, storage_config), artifacts=None
        )
    return MergeBuild(overlay=None, artifacts=build_snapshot_artifacts(inputs))


@dataclass(frozen=True, slots=True)
class StreamingStats:
    """Counters describing the state of a streaming service."""

    events: int
    batches: int
    merges: int
    queries: int
    cache_hits: int
    cache_misses: int
    watermark: Optional[TimeInstant]
    snapshot_watermark: Optional[TimeInstant]
    delta_contacts: int
    snapshot_contacts: int
    snapshot_runs: int
    snapshot_records_written: int
    superseded_blocks: int
    compactions: int
    graph_records_written: int
    graph_rebuilds: int
    graph_superseded_blocks: int
    flushed_intervals: int
    ingest_seconds: float
    reclaims: int = 0
    reclaimed_blocks: int = 0
    graph_repacks: int = 0
    label_rejections: int = 0
    label_frontier_prunes: int = 0
    label_relabels: int = 0
    label_full_relabels: int = 0
    bloom_rejections: int = 0
    partition_cache_hits: int = 0
    partition_cache_misses: int = 0
    snapshot_runs_skipped: int = 0
    snapshot_blocks_skipped: int = 0

    @property
    def events_per_second(self) -> float:
        """Ingest throughput over the life of the service."""
        if self.ingest_seconds <= 0:
            return 0.0
        return self.events / self.ingest_seconds


class StreamingReachabilityService:
    """Accepts an ordered event stream and stays queryable throughout."""

    def __init__(
        self,
        environment_size: Tuple[float, float],
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
        name: str = "stream",
        auto_merge: bool = True,
        ingestor: StreamIngestor | None = None,
        overlay: ReachGraphDeltaOverlay | None = None,
        merge_executor: "MergeExecutor | None" = None,
    ) -> None:
        self.contact_config = contact_config or ContactConfig()
        self.grid_config = grid_config or ReachGridConfig()
        self.streaming_config = streaming_config or StreamingConfig()
        self.name = name
        # The sharded coordinator turns auto_merge off and triggers per-shard
        # merges itself, bounded at the global low-watermark.
        self.auto_merge = auto_merge
        self._storage_config = storage_config
        # ``ingestor``/``overlay`` are the resume path (see :meth:`open`):
        # constructing fresh ones here would attach with ``attach=False``,
        # which deletes any files the previous incarnation left behind.
        self._ingestor = ingestor if ingestor is not None else StreamIngestor(
            environment_size,
            contact_config=self.contact_config,
            grid_config=self.grid_config,
            storage_config=storage_config,
            name=name,
        )
        # The overlay gets its own storage system so per-query IO accounting
        # is not polluted by the ingestor's ongoing grid writes.
        self._overlay = overlay if overlay is not None else ReachGraphDeltaOverlay(
            StorageSystem(storage_config, name=f"{name}-overlay", attach=False)
        )
        self._policy = make_policy(self.streaming_config)
        self._cache = QueryResultCache(self.streaming_config.query_cache_size)
        # A caller-supplied executor (the sharded coordinator shares one
        # across its shards) is borrowed — its lifecycle stays with the
        # caller; a config-selected one is created lazily and closed by
        # :meth:`close`.
        self._merge_executor = merge_executor
        self._owns_executor = merge_executor is None
        self._consumed_closed = 0
        self._restage_cursor = 0
        self._intervals_at_merge = 0
        self._batches = 0
        self._merges = 0
        self._queries = 0
        self._compactions = 0
        self._snapshot_records_written = 0
        self._graph_records_written = 0
        self._graph_rebuilds = 0
        self._graph_repacks = 0
        self._reclaims = 0
        self._reclaimed_blocks = 0
        # Fast-path counter bases: rebuild-mode merges swap the overlay out
        # wholesale, so the superseded overlay's query-side ledgers are folded
        # in here to keep the service-lifetime stats monotonic.
        self._label_rejections_base = 0
        self._label_prunes_base = 0
        self._label_relabels_base = 0
        self._label_full_relabels_base = 0
        self._bloom_rejections_base = 0
        self._pcache_hits_base = 0
        self._pcache_misses_base = 0
        self._runs_skipped_base = 0
        self._blocks_skipped_base = 0
        self._closed = False
        self._overlay.configure_partition_cache(
            self.streaming_config.partition_cache_size
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        dataset: TrajectoryDataset,
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> "StreamingReachabilityService":
        """A service sized for (but not yet fed with) a dataset's environment."""
        return cls(
            environment_size=dataset.environment_size,
            contact_config=contact_config,
            grid_config=grid_config,
            streaming_config=streaming_config,
            storage_config=storage_config,
            name=f"{dataset.name}-stream",
        )

    @classmethod
    def open(
        cls,
        storage_config: StorageConfig,
        name: str = "stream",
        streaming_config: StreamingConfig | None = None,
        auto_merge: bool = True,
    ) -> "StreamingReachabilityService":
        """Resume a flushed (or killed) service: reopen state, keep ingesting.

        The full-resume counterpart of the read-only
        :meth:`SnapshotQueryService.open`: the overlay (snapshot runs, graph
        fast path) is restored from the overlay device, the ingestor replays
        its WAL from the grid device — rebuilding the open-contact join,
        position buffers, and grid memtable — and the delta is rebuilt from
        the replayed closed contacts, so the service continues ingesting and
        merging from the recovered watermark.  The WAL is authoritative: a
        crash between the ingestor flush and the overlay (manifest) flush
        leaves the WAL ahead, and resuming recovers those batches too.
        """
        reopened = SnapshotQueryService.open(storage_config, name)
        try:
            ingestor = StreamIngestor.restore(storage_config, name)
        except BaseException:
            reopened.close()
            raise
        service = cls(
            environment_size=ingestor.environment_size,
            contact_config=ingestor.contact_config,
            grid_config=ingestor.grid_config,
            streaming_config=streaming_config,
            storage_config=storage_config,
            name=name,
            auto_merge=auto_merge,
            ingestor=ingestor,
            overlay=reopened.overlay,
        )
        service._resume_from_recovered_state()
        return service

    def _resume_from_recovered_state(self) -> None:
        # The WAL-replayed ingestor is authoritative for everything unfrozen:
        # discard the manifest's delta (it may trail the WAL) and restage the
        # closed contacts extending past the snapshot watermark.
        bound = self._overlay.snapshot_watermark
        closed = self._ingestor.closed_contacts
        frozen = 0
        if bound is not None:
            for contact in closed:
                if contact.validity.end > bound:
                    break
                frozen += 1
        self._overlay.restore_delta(())
        for contact in closed[frozen:]:
            self._overlay.add_contact(contact)
        self._restage_cursor = frozen
        self._consumed_closed = len(closed)
        self._intervals_at_merge = self._ingestor.num_flushed_intervals

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        events: StreamBatch | Iterable[SampleEvent],
        prevalidated: bool = False,
    ) -> int:
        """Ingest one batch (or a bare iterable of sample events).

        A bare iterable is wrapped into a batch whose watermark is its latest
        sample time.  Returns the number of events ingested; afterwards the
        service is immediately queryable at the new watermark.
        ``prevalidated`` is forwarded to the ingestor (see
        :meth:`StreamIngestor.ingest`).
        """
        self._ensure_open()
        batch = (
            events
            if isinstance(events, StreamBatch)
            else StreamBatch.of(tuple(events))
        )
        before = self._ingestor.watermark
        count = self._ingestor.ingest(batch, prevalidated=prevalidated)
        self._batches += 1
        self._sync_delta()
        if self._ingestor.watermark != before:
            self._cache.clear()
        if self.auto_merge:
            self._maybe_merge()
        return count

    def drain(self, source) -> StreamingStats:
        """Ingest an entire stream source (or dataset / canned name) to its end."""
        if isinstance(source, (TrajectoryDataset, str)):
            source = replay(source, batch_ticks=self.streaming_config.batch_ticks)
        for batch in source.batches():
            self.ingest(batch)
        return self.stats

    def _sync_delta(self) -> None:
        for contact in self._ingestor.closed_contacts_since(self._consumed_closed):
            self._overlay.add_contact(contact)
        self._consumed_closed = self._ingestor.num_closed_contacts

    def merge_context(self, low_watermark: Optional[TimeInstant] = None) -> MergeContext:
        """The :class:`MergeContext` a merge policy would see right now."""
        return MergeContext(
            delta_contacts=self._overlay.delta_size,
            snapshot_contacts=self._overlay.snapshot_size,
            intervals_since_merge=self._ingestor.num_flushed_intervals
            - self._intervals_at_merge,
            watermark=self._ingestor.watermark,
            snapshot_watermark=self._overlay.snapshot_watermark,
            low_watermark=low_watermark,
        )

    def _maybe_merge(self) -> None:
        watermark = self._ingestor.watermark
        if watermark is None or watermark == self._overlay.snapshot_watermark:
            return
        if self._policy.should_merge(self.merge_context()):
            self.merge()

    def merge(self, through: Optional[TimeInstant] = None) -> None:
        """Fold the delta into the snapshot over the ingested prefix.

        Normally triggered by the merge policy; exposed so callers can force a
        merge (e.g. before a read-heavy phase).  ``through`` bounds the frozen
        prefix at an earlier instant than the watermark (the sharded
        coordinator passes the global low-watermark); closed contacts
        extending past the bound stay in the delta, clipped at the boundary.

        The three phases — :meth:`prepare_merge` (capture the frozen prefix),
        :func:`build_merge` (the pure build, rebuild- or LSM-mode), and
        :meth:`adopt_merge` (atomic adoption) — are public so the asyncio
        front-end and the sharded coordinator can schedule the middle phase
        themselves; this method runs them back to back, routing the build
        through the configured :class:`~repro.streaming.parallel.MergeExecutor`
        (``inline`` builds right here; ``thread``/``process`` build on a
        worker and this thread waits for the result before adopting).
        """
        inputs = self.prepare_merge(through=through)
        build = self.merge_executor.submit(inputs, self._storage_config).result()
        crash_point("merge-pre-adopt")
        self.adopt_merge(build, inputs)

    def prepare_merge(self, through: Optional[TimeInstant] = None) -> MergeInputs:
        """Capture the frozen prefix a merge would fold into a snapshot.

        Synchronous and cheap relative to the build: materializes the prefix
        dataset and its contact set through ``min(through, watermark)``, plus
        the freshly frozen slice (clipped past the current snapshot
        watermark) the LSM path appends.  The returned :class:`MergeInputs`
        shares no mutable state with the ingestor, so a :func:`build_merge`
        over it may run concurrently with further ingestion.
        """
        self._ensure_open()
        watermark = self._ingestor.watermark
        if watermark is None:
            raise StreamingError("nothing to merge: no batch ingested yet")
        bound = watermark if through is None else min(through, watermark)
        self._sync_delta()
        contacts = tuple(self._ingestor.contacts_through(bound))
        snapshot_watermark = self._overlay.snapshot_watermark
        mode = self.streaming_config.snapshot_mode
        if mode == "rebuild":
            # The rebuild path rewrites the full prefix and never reads the
            # frozen slice; skip the per-contact clipping pass.
            new_contacts: Tuple[Contact, ...] = ()
        elif snapshot_watermark is None:
            new_contacts = contacts
        else:
            new_contacts = tuple(
                clipped
                for clipped in (
                    contact.clipped(snapshot_watermark + 1, contact.validity.end)
                    for contact in contacts
                )
                if clipped is not None
            )
        graph_mode = self.streaming_config.graph_mode
        graph_frontier = None
        if (
            mode != "rebuild"
            and graph_mode == "incremental"
            and self.streaming_config.build_reachgraph_on_merge
        ):
            # Capture the live index's resumable state on this (owning)
            # thread; None before the first fast-path build, which makes the
            # first merge a full build and every later one a patch.
            graph_frontier = self._overlay.graph_frontier()
        return MergeInputs(
            prefix=self._ingestor.prefix_dataset(through=bound),
            contacts=contacts,
            new_contacts=new_contacts,
            bound=bound,
            temporal_resolution=self.grid_config.temporal_resolution,
            distance_threshold=self.contact_config.distance_threshold,
            build_reachgraph=self.streaming_config.build_reachgraph_on_merge,
            mode=mode,
            graph_mode=graph_mode,
            graph_frontier=graph_frontier,
            graph_labels=self.streaming_config.graph_labels,
            label_dirty_ratio=self.streaming_config.label_dirty_ratio,
        )

    def adopt_merge(self, build: MergeBuild, inputs: MergeInputs) -> None:
        """Atomically adopt the built half of a merge.

        Rebuild mode swaps the complete fresh overlay in
        (:meth:`adopt_snapshot`); LSM mode appends the frozen slice as one
        snapshot run, installs the rebuilt query-side structures, and — once
        the run count passes ``compaction_max_runs`` — folds the runs with a
        compaction.  Either way, no step between the adoption and the cache
        invalidation yields control, so concurrent queries see the old
        snapshot or the fully adopted new one, never a mixture.
        """
        if build.overlay is not None:
            self.adopt_snapshot(build.overlay, inputs.bound)
            self._maybe_reclaim()
            return
        assert build.artifacts is not None, "MergeBuild must carry one half"
        graph_written_before = self._overlay.graph_records_written
        graph_rebuilds_before = self._overlay.graph_rebuilds
        self._snapshot_records_written += self._overlay.adopt_increment(
            build.artifacts,
            inputs.new_contacts,
            inputs.bound,
            origin=inputs.prefix.horizon.start,
            temporal_resolution=inputs.temporal_resolution,
        )
        self._graph_records_written += (
            self._overlay.graph_records_written - graph_written_before
        )
        self._graph_rebuilds += self._overlay.graph_rebuilds - graph_rebuilds_before
        self._finish_adopt(inputs.bound)
        # Compaction deliberately runs here, on the adopting thread, even in
        # the async service: it reads the live runs through the (non-thread-
        # safe) buffer pool that concurrent queries also use, so moving it to
        # a worker thread would race them.  The run append above is the cheap
        # part; a level-``L`` fold is bounded by the level's size and fires
        # only once per compaction_max_runs**(L+1) merges.
        compactions_before = self._overlay.snapshot_compactions
        compacted = self._overlay.maybe_compact(
            self.streaming_config.compaction_max_runs
        )
        if compacted:
            self._snapshot_records_written += compacted
        self._compactions += self._overlay.snapshot_compactions - compactions_before
        self._maybe_repack()
        self._maybe_reclaim()

    def _maybe_repack(self) -> None:
        """Fold cold fragmented graph partitions when the config asks for it.

        Runs on the adopting thread for the same reason compaction does: the
        fold reads live partitions through the shared buffer pool.  Only an
        index placed on the overlay's own device is repacked — one attached
        out-of-band manages its own space.
        """
        min_partitions = self.streaming_config.graph_repack_min_partitions
        if not min_partitions:
            return
        processor = self._overlay.snapshot_processor
        if processor is None:
            return
        index = processor.index
        if not index.is_placed or index.storage is not self._overlay.storage:
            return
        repacks_before = index.num_repacks
        self._graph_records_written += index.repack_frontier(min_partitions)
        repacked = index.num_repacks - repacks_before
        self._graph_repacks += repacked
        if repacked:
            # A repack rewrites partition extents in place; any cached
            # partition payloads may now describe stale block placements.
            self._overlay.note_graph_mutated()

    def adopt_snapshot(
        self, overlay: ReachGraphDeltaOverlay, bound: TimeInstant
    ) -> None:
        """Atomically swap a freshly built snapshot overlay in (rebuild mode).

        Restages the unfrozen halves of every closed contact extending past
        ``bound`` into the new overlay's delta (``add_contact`` clips them at
        the snapshot watermark), so the swap is correct even when ingestion
        advanced past the captured prefix while the overlay was being built.
        The superseded overlay's storage system is destroyed: nothing
        references it after the swap, and on persistent backends every
        rebuild would otherwise leak an open device file (and its on-disk
        bytes) into the storage directory.
        """
        previous = self._overlay
        self._snapshot_records_written += overlay.snapshot_records_written
        self._graph_records_written += overlay.graph_records_written
        self._graph_rebuilds += overlay.graph_rebuilds
        self._label_rejections_base += previous.label_rejections
        self._label_prunes_base += previous.label_frontier_prunes
        self._label_relabels_base += previous.label_relabels
        self._label_full_relabels_base += previous.label_full_relabels
        self._bloom_rejections_base += previous.bloom_rejections
        self._pcache_hits_base += previous.partition_cache.hits
        self._pcache_misses_base += previous.partition_cache.misses
        self._runs_skipped_base += previous.snapshot_runs_skipped
        self._blocks_skipped_base += previous.snapshot_blocks_skipped
        overlay.configure_partition_cache(self.streaming_config.partition_cache_size)
        self._overlay = overlay
        self._finish_adopt(bound)
        if previous is not overlay and previous.storage is not overlay.storage:
            previous.storage.destroy()

    def _finish_adopt(self, bound: TimeInstant) -> None:
        # Closed contacts are produced with non-decreasing end instants, so
        # everything before the restage cursor is frozen below every bound a
        # later merge can use — only the tail needs rescanning.  (Restaging
        # the full history here was quadratic on long streams and, in LSM
        # mode, re-added contacts the snapshot store already held.)
        tail = self._ingestor.closed_contacts_since(self._restage_cursor)
        frozen = 0
        for contact in tail:
            if contact.validity.end > bound:
                break
            frozen += 1
        self._restage_cursor += frozen
        for contact in tail[frozen:]:
            self._overlay.add_contact(contact)
        self._consumed_closed = self._ingestor.num_closed_contacts
        self._intervals_at_merge = self._ingestor.num_flushed_intervals
        self._merges += 1
        self._cache.clear()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer a reachability query over everything ingested so far."""
        self._ensure_open()
        self._queries += 1
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        result = self._overlay.evaluate(
            query, open_contacts=self._ingestor.open_contacts()
        )
        self._cache.put(query, result)
        return result

    # ------------------------------------------------------------------
    # durability (persistent backends)
    # ------------------------------------------------------------------
    def _overlay_manifest(self) -> dict:
        def records(contacts: Iterable[Contact]) -> List[Tuple[int, int, int, int]]:
            return [
                (c.first, c.second, c.validity.start, c.validity.end)
                for c in contacts
            ]

        store = self._overlay.snapshot_store
        return {
            "watermark": self._ingestor.watermark,
            "snapshot_watermark": self._overlay.snapshot_watermark,
            "store": None if store is None else store.manifest(),
            "delta": records(self._overlay.delta_contacts),
            "open": records(self._ingestor.open_contacts()),
            "graph": self._overlay.graph_catalog(),
        }

    def flush(self) -> None:
        """Persist the queryable state durably (a no-op on the sim backend).

        Writes the overlay manifest — snapshot-store run directory, buffered
        delta contacts, open contact runs, watermark, graph catalog — into
        the overlay storage system's metadata and flushes both storage
        systems, so a crash after this point loses nothing:
        :meth:`SnapshotQueryService.open` can reconstruct a service answering
        bit-identically at the flushed watermark, and
        :meth:`StreamingReachabilityService.open` can resume ingesting.

        The overlay flush is the commit point: the ingestor's device (whose
        journal checkpoint the manifest's watermark leans on) is flushed
        *first*, so a crash between the two flushes leaves the ingestor
        durably ahead of the manifest — recoverable — never behind it.
        """
        self._ingestor.flush()
        crash_point("flush-post-ingestor")
        self._overlay.storage.put_metadata(
            _OVERLAY_MANIFEST_KEY, self._overlay_manifest()
        )
        crash_point("flush-post-manifest")
        self._overlay.storage.flush()

    def reclaim(self) -> int:
        """Copy-forward reclaim of both devices; returns the blocks freed.

        Flushes first: the reclaim's manifest commit carries whatever
        metadata is current, so the durable overlay/grid manifests must
        describe the *live* run directory and checkpoint before the catalog
        is rewritten — otherwise a crash after the reclaim could reopen a
        manifest naming run files the committed catalog no longer holds.
        After the device-level reclaim the overlay's superseded ledgers
        reset (the garbage they counted is gone).
        """
        self._ensure_open()
        self.flush()
        freed = self._overlay.storage.reclaim()
        if freed:
            self._overlay.note_device_reclaimed()
        freed += self._ingestor.storage.reclaim()
        if freed:
            self._reclaims += 1
            self._reclaimed_blocks += freed
        return freed

    def _maybe_reclaim(self) -> None:
        """Reclaim when either device's garbage ratio passes the config knob."""
        ratio = self.streaming_config.gc_trigger_ratio
        if ratio <= 0.0:
            return
        if (
            self._overlay.storage.garbage_ratio >= ratio
            or self._ingestor.storage.garbage_ratio >= ratio
        ):
            self.reclaim()

    def close(self) -> None:
        """Flush and release both storage systems.  Idempotent.

        Afterwards the service must not ingest or answer queries; with a
        persistent backend and a real ``storage_dir``, the state reopens via
        :meth:`SnapshotQueryService.open`.  Reopening targets the LSM write
        path (the default ``snapshot_mode``), whose snapshot store lives on
        the service's own ``<name>-overlay`` device for its whole life;
        ``rebuild`` mode places each merge's snapshot on a fresh per-merge
        device, which :meth:`SnapshotQueryService.open` does not chase.
        """
        if self._closed:
            return
        self.flush()
        if self._owns_executor and self._merge_executor is not None:
            self._merge_executor.close()
            self._merge_executor = None
        self._overlay.storage.close()
        self._ingestor.storage.close()
        self._cache.clear()  # a closed service must not serve stale answers
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise StreamingError(
                f"service {self.name!r} is closed; reopen its persisted state "
                "with SnapshotQueryService.open"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def merge_executor(self) -> "MergeExecutor":
        """Where this service's merge builds run (see ``StreamingConfig``).

        Created lazily from ``streaming_config.merge_executor`` /
        ``merge_workers`` unless the constructor was handed a shared one
        (the sharded coordinator does that, so one pool serves all shards).
        """
        if self._merge_executor is None:
            from .parallel import make_merge_executor

            self._merge_executor = make_merge_executor(
                self.streaming_config.merge_executor,
                self.streaming_config.merge_workers,
            )
        return self._merge_executor

    @property
    def watermark(self) -> Optional[TimeInstant]:
        """Last complete tick of the stream (``None`` before the first batch)."""
        return self._ingestor.watermark

    @property
    def ingestor(self) -> StreamIngestor:
        """The underlying ingestor (grid cells, contacts, counters)."""
        return self._ingestor

    @property
    def overlay(self) -> ReachGraphDeltaOverlay:
        """The snapshot + delta overlay answering queries."""
        return self._overlay

    @property
    def num_merges(self) -> int:
        """Merges performed so far."""
        return self._merges

    @property
    def num_compactions(self) -> int:
        """Snapshot-store compactions performed so far."""
        return self._compactions

    @property
    def num_reclaims(self) -> int:
        """Device reclaim passes that actually freed blocks."""
        return self._reclaims

    @property
    def reclaimed_blocks(self) -> int:
        """Total device blocks freed by reclaim passes."""
        return self._reclaimed_blocks

    @property
    def num_graph_repacks(self) -> int:
        """Frontier repack folds performed on the graph fast path."""
        return self._graph_repacks

    @property
    def snapshot_records_written(self) -> int:
        """Cumulative contact records written by merges and compactions.

        The service-lifetime write-amplification ledger: rebuild-mode merges
        add the complete prefix every time, LSM-mode merges add only the
        freshly frozen slice (plus occasional compaction rewrites).
        """
        return self._snapshot_records_written

    @property
    def graph_records_written(self) -> int:
        """Cumulative ReachGraph vertex records written by merges.

        The graph-side write-amplification ledger: graph-rebuild merges write
        the complete vertex set every time, incremental merges write only the
        fresh and dirtied partitions.
        """
        return self._graph_records_written

    @property
    def graph_rebuilds(self) -> int:
        """Full ReachGraph builds performed by merges.

        1 over the whole stream in incremental mode (the initial build);
        one per fast-path merge in rebuild mode.
        """
        return self._graph_rebuilds

    @property
    def stats(self) -> StreamingStats:
        """A snapshot of the service's counters."""
        return StreamingStats(
            events=self._ingestor.num_events,
            batches=self._batches,
            merges=self._merges,
            queries=self._queries,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            watermark=self._ingestor.watermark,
            snapshot_watermark=self._overlay.snapshot_watermark,
            delta_contacts=self._overlay.delta_size,
            snapshot_contacts=self._overlay.snapshot_size,
            snapshot_runs=self._overlay.snapshot_runs,
            snapshot_records_written=self._snapshot_records_written,
            superseded_blocks=self._overlay.snapshot_superseded_blocks,
            compactions=self._compactions,
            graph_records_written=self._graph_records_written,
            graph_rebuilds=self._graph_rebuilds,
            graph_superseded_blocks=self._overlay.graph_superseded_blocks,
            flushed_intervals=self._ingestor.num_flushed_intervals,
            ingest_seconds=self._ingestor.ingest_seconds,
            reclaims=self._reclaims,
            reclaimed_blocks=self._reclaimed_blocks,
            graph_repacks=self._graph_repacks,
            label_rejections=self._label_rejections_base
            + self._overlay.label_rejections,
            label_frontier_prunes=self._label_prunes_base
            + self._overlay.label_frontier_prunes,
            label_relabels=self._label_relabels_base + self._overlay.label_relabels,
            label_full_relabels=self._label_full_relabels_base
            + self._overlay.label_full_relabels,
            bloom_rejections=self._bloom_rejections_base
            + self._overlay.bloom_rejections,
            partition_cache_hits=self._pcache_hits_base
            + self._overlay.partition_cache.hits,
            partition_cache_misses=self._pcache_misses_base
            + self._overlay.partition_cache.misses,
            snapshot_runs_skipped=self._runs_skipped_base
            + self._overlay.snapshot_runs_skipped,
            snapshot_blocks_skipped=self._blocks_skipped_base
            + self._overlay.snapshot_blocks_skipped,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingReachabilityService(name={self.name!r}, "
            f"watermark={self.watermark}, merges={self._merges}, "
            f"delta={self._overlay.delta_size})"
        )


class SnapshotQueryService:
    """A read-only service reopened from a closed persistent storage system.

    What :meth:`StreamingReachabilityService.flush` makes durable is the
    *queryable* state — snapshot contact runs, buffered delta contacts, open
    contact runs, the watermark, and the ReachGraph fast path's partition
    extents plus catalog.  Reopening restores exactly that: answers are
    bit-identical to the service that was closed, at its final watermark,
    and queries the fast path can serve (no delta or open contact overlaps
    the interval) run through the restored ReachGraph index — the rest take
    the overlay union path (snapshot runs read from the reopened device, IO
    charged as usual).  To *resume ingesting* instead of just querying, use
    :meth:`StreamingReachabilityService.open`.
    """

    def __init__(
        self,
        storage: StorageSystem,
        overlay: ReachGraphDeltaOverlay,
        open_contacts: Sequence[Contact],
        watermark: Optional[TimeInstant],
    ) -> None:
        self._storage = storage
        self._overlay = overlay
        self._open_contacts = list(open_contacts)
        self._watermark = watermark
        self._queries = 0

    @classmethod
    def open(
        cls, storage_config: StorageConfig, name: str = "stream"
    ) -> "SnapshotQueryService":
        """Reopen the persisted state of the service that was named ``name``.

        ``storage_config`` must use a persistent backend and the same
        ``storage_dir`` the original service wrote to; ``name`` must match
        the original service's name (the overlay device is looked up as
        ``<name>-overlay``).
        """
        if storage_config.backend == "sim" or storage_config.storage_dir is None:
            raise StreamingError(
                "reopening needs a persistent backend and a real storage_dir"
            )
        # Probe for the durable manifest before constructing the storage
        # system: attaching to a path that was never written would create a
        # fresh empty device file — junk in the operator's data directory on
        # what is purely a read operation with a wrong name or dir.
        suffix = BACKEND_FILE_SUFFIX[storage_config.backend]
        device_path = os.path.join(
            storage_config.storage_dir, f"{name}-overlay{suffix}"
        )
        missing = StreamingError(
            f"no persisted overlay manifest found for service {name!r} "
            f"in {storage_config.storage_dir!r} (was the service closed?)"
        )
        if not os.path.exists(device_path + ".manifest"):
            raise missing
        storage = StorageSystem(storage_config, name=f"{name}-overlay")
        # Everything after the device is open runs under one guard: a corrupt
        # manifest must not leak the open device handle (BaseException so even
        # a SimulatedCrash mid-restore releases it).
        try:
            manifest = storage.get_metadata(_OVERLAY_MANIFEST_KEY)
            if manifest is None:
                raise missing
            overlay = ReachGraphDeltaOverlay(storage)
            store = None
            if manifest["store"] is not None:
                store = ContactSnapshotStore.restore(storage, manifest["store"])
            overlay.attach_snapshot_store(store, manifest["snapshot_watermark"])
            overlay.restore_delta(
                Contact(first, second, TimeInterval(start, end))
                for first, second, start, end in manifest["delta"]
            )
            open_contacts = [
                Contact(first, second, TimeInterval(start, end))
                for first, second, start, end in manifest["open"]
            ]
            if manifest.get("graph") is not None:
                cls._restore_graph(
                    storage_config, name, storage, overlay, manifest["graph"]
                )
            return cls(storage, overlay, open_contacts, manifest["watermark"])
        except BaseException:
            storage.release()
            raise

    @staticmethod
    def _restore_graph(
        storage_config: StorageConfig,
        name: str,
        storage: StorageSystem,
        overlay: ReachGraphDeltaOverlay,
        catalog: dict,
    ) -> None:
        """Reattach the persisted ReachGraph fast path to ``overlay``.

        The graph's partition extents live on the overlay device; the prefix
        dataset and contact network they describe are rebuilt by replaying
        the ingestor's WAL up to the snapshot watermark (both are pure
        in-memory structures, so the grid device is closed again afterwards).
        Skipped silently when the grid device was never flushed — the union
        path still answers correctly without the fast path.
        """
        suffix = BACKEND_FILE_SUFFIX[storage_config.backend]
        assert storage_config.storage_dir is not None
        grid_path = os.path.join(
            storage_config.storage_dir, f"{name}-grid{suffix}.manifest"
        )
        if not os.path.exists(grid_path):
            return
        from ..reachgraph import ReachGraphIndex, ReachGraphQueryProcessor

        snapshot_watermark = overlay.snapshot_watermark
        ingestor = StreamIngestor.restore(storage_config, name)
        try:
            prefix = ingestor.prefix_dataset(through=snapshot_watermark)
            network = ContactNetwork(
                prefix,
                tuple(ingestor.contacts_through(snapshot_watermark)),
                ingestor.contact_config.distance_threshold,
            )
        finally:
            # release(), not close(): this restore is a pure read, and a
            # flush here would rewrite the grid manifest — racing any other
            # process (a parallel query worker) reopening the same state.
            ingestor.storage.release()
        index = ReachGraphIndex.restore(storage, catalog["index"], prefix, network)
        overlay.attach_graph(
            ReachGraphQueryProcessor(index), network, catalog["version"]
        )

    def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer a query over the persisted prefix (union path, IO charged)."""
        self._queries += 1
        return self._overlay.evaluate(query, open_contacts=self._open_contacts)

    @property
    def watermark(self) -> Optional[TimeInstant]:
        """The watermark the persisted state answers through."""
        return self._watermark

    @property
    def open_contacts(self) -> List[Contact]:
        """The restored still-open contact runs (clipped at the watermark)."""
        return list(self._open_contacts)

    @property
    def overlay(self) -> ReachGraphDeltaOverlay:
        """The restored snapshot + delta overlay."""
        return self._overlay

    @property
    def storage(self) -> StorageSystem:
        """The reopened storage system (IO counters, paths)."""
        return self._storage

    def close(self) -> None:
        """Release the reopened device (the state stays on disk).

        Write-free: a read-only service has nothing to persist, and skipping
        the final manifest rewrite lets many processes hold (and recycle)
        snapshots of the same storage directory concurrently.
        """
        self._storage.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SnapshotQueryService(watermark={self._watermark}, "
            f"snapshot={self._overlay.snapshot_size}, "
            f"delta={self._overlay.delta_size})"
        )
