"""Merge policies: when does the delta get folded into a new snapshot?

The trade-off is the classic write/read amplification balance of staged
storage designs: merging often keeps queries on the fast frozen indexes but
pays repeated rebuild cost; merging rarely makes ingestion cheap but grows the
in-memory delta every query must scan.  Three policies cover the usual
operating points; all of them see the same :class:`MergeContext` after every
ingested batch.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..core.config import MERGE_POLICIES, StreamingConfig
from ..core.errors import ConfigurationError

__all__ = [
    "MergeContext",
    "MergePolicy",
    "DeltaSizePolicy",
    "ElapsedIntervalsPolicy",
    "AmplificationPolicy",
    "make_policy",
]


@dataclass(frozen=True, slots=True)
class MergeContext:
    """What a merge policy gets to look at after each ingested batch.

    Attributes
    ----------
    delta_contacts:
        Contacts currently buffered in the delta graph.
    snapshot_contacts:
        Contacts in the frozen snapshot (0 before the first merge).
    intervals_since_merge:
        Temporal grid intervals fully elapsed since the last merge (or since
        the stream origin when no merge has happened yet).
    watermark / snapshot_watermark:
        Current stream watermark and the watermark of the last merge.
    low_watermark:
        In a sharded deployment, the global low-watermark (minimum over all
        per-shard watermarks) bounding how far this shard's merge may freeze;
        ``None`` in the single-shard service, where the shard's own watermark
        is the bound.
    """

    delta_contacts: int
    snapshot_contacts: int
    intervals_since_merge: int
    watermark: Optional[int]
    snapshot_watermark: Optional[int]
    low_watermark: Optional[int] = None

    @property
    def amplification(self) -> float:
        """Delta size relative to snapshot size."""
        return self.delta_contacts / max(1, self.snapshot_contacts)


class MergePolicy(ABC):
    """Decides, after every batch, whether to fold the delta into a snapshot."""

    name: str = "abstract"

    @abstractmethod
    def should_merge(self, context: MergeContext) -> bool:
        """True when the service should merge now."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DeltaSizePolicy(MergePolicy):
    """Merge once the delta holds at least ``max_delta_contacts`` contacts."""

    name = "delta-size"

    def __init__(self, max_delta_contacts: int) -> None:
        if max_delta_contacts <= 0:
            raise ConfigurationError("max_delta_contacts must be positive")
        self.max_delta_contacts = max_delta_contacts

    def should_merge(self, context: MergeContext) -> bool:
        """True once the delta holds at least ``max_delta_contacts`` contacts."""
        return context.delta_contacts >= self.max_delta_contacts


class ElapsedIntervalsPolicy(MergePolicy):
    """Merge every ``max_elapsed_intervals`` temporal grid intervals.

    Mirrors the paper's interval-ordered placement: a merge boundary always
    coincides with work the grid has already organized by temporal interval.
    """

    name = "elapsed-intervals"

    def __init__(self, max_elapsed_intervals: int) -> None:
        if max_elapsed_intervals <= 0:
            raise ConfigurationError("max_elapsed_intervals must be positive")
        self.max_elapsed_intervals = max_elapsed_intervals

    def should_merge(self, context: MergeContext) -> bool:
        """True once ``max_elapsed_intervals`` grid intervals closed since the last merge."""
        return context.intervals_since_merge >= self.max_elapsed_intervals


class AmplificationPolicy(MergePolicy):
    """Merge when the delta outgrows ``max_amplification`` × snapshot size.

    Keeps the per-query overlay scan proportional to the read-optimized part,
    so query cost amplification stays bounded as the stream grows.
    """

    name = "amplification"

    def __init__(self, max_amplification: float) -> None:
        if max_amplification <= 0:
            raise ConfigurationError("max_amplification must be positive")
        self.max_amplification = max_amplification

    def should_merge(self, context: MergeContext) -> bool:
        """True once the delta/snapshot size ratio reaches ``max_amplification``."""
        if context.delta_contacts == 0:
            return False
        return context.amplification >= self.max_amplification


def make_policy(config: StreamingConfig) -> MergePolicy:
    """Instantiate the merge policy selected by a :class:`StreamingConfig`."""
    if config.merge_policy == "delta-size":
        return DeltaSizePolicy(config.max_delta_contacts)
    if config.merge_policy == "elapsed-intervals":
        return ElapsedIntervalsPolicy(config.max_elapsed_intervals)
    if config.merge_policy == "amplification":
        return AmplificationPolicy(config.max_amplification)
    raise ConfigurationError(  # pragma: no cover - StreamingConfig validates first
        f"unknown merge policy {config.merge_policy!r}; "
        f"choose one of {', '.join(MERGE_POLICIES)}"
    )
