"""Sharded stream ingestion: N ingestors, per-shard watermarks, one truth.

:class:`ShardedStreamIngestor` scales the ingestion path out by partitioning
the event stream across several :class:`~repro.streaming.ingest.StreamIngestor`
instances (one grid memtable, contact join, and blockfile each) through a
pluggable :class:`~repro.streaming.router.ShardRouter`.  Each shard advances
its own watermark; the **global low-watermark** — the minimum over all
per-shard watermarks — is the largest instant through which *every* shard's
data is complete, and therefore the only sound bound for cross-shard answers
and frozen-prefix merges.

Because routing is sticky per object, a shard's incremental join sees every
contact between two of *its own* objects, but a pair spanning two shards is
invisible to both.  :class:`CrossShardContactTracker` closes that gap: it
buffers the positions of every routed sample and, whenever the low-watermark
advances, runs the same grid-hash join the shards run — keeping only pairs
whose objects live on different shards — so the union

``(intra-shard contacts of every shard) ∪ (cross-shard contacts)``

covers exactly the contact network of the globally complete prefix.  In a
real deployment the tracker would be fed only boundary-cell positions by each
shard; the simulation keeps every position, trading memory for the same
answers.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.errors import ShardingError, StreamingError
from ..core.types import ObjectId, Point, TimeInstant, TimeInterval
from ..contacts.join import pairs_within_distance
from ..contacts.network import Contact
from .events import SampleEvent, StreamBatch
from .ingest import StreamIngestor
from .router import ShardRouter

__all__ = ["CrossShardContactTracker", "ShardedStreamIngestor"]

#: A shard sink is either a bare ingestor or anything owning one through an
#: ``.ingestor`` attribute (the streaming service does), with ``.ingest``.
ShardSink = Union[StreamIngestor, object]


class CrossShardContactTracker:
    """The incremental contact join restricted to pairs spanning two shards.

    Mirrors the open/closed run bookkeeping of
    :class:`~repro.streaming.ingest.StreamIngestor`, but is driven by the
    global low-watermark instead of a single shard's watermark: tick ``t`` is
    joined only once every shard has promised completeness through ``t``.
    """

    def __init__(self, router: ShardRouter, distance_threshold: float) -> None:
        if distance_threshold <= 0:
            raise StreamingError("distance_threshold must be positive")
        self._router = router
        self._threshold = distance_threshold
        self._pending: Dict[TimeInstant, Dict[ObjectId, Point]] = {}
        self._processed: Optional[TimeInstant] = None
        self._origin: Optional[TimeInstant] = None
        self._previous_pairs: Set[Tuple[ObjectId, ObjectId]] = set()
        self._open: Dict[Tuple[ObjectId, ObjectId], TimeInstant] = {}
        self._closed: List[Contact] = []

    def observe(self, samples: Sequence[SampleEvent]) -> None:
        """Buffer routed samples until their tick falls under the low-watermark."""
        for event in samples:
            self._pending.setdefault(event.time, {})[event.object_id] = event.position

    def advance(self, low_watermark: Optional[TimeInstant]) -> None:
        """Join every buffered tick that the low-watermark has made complete."""
        if low_watermark is None:
            return
        if self._origin is None:
            if not self._pending:
                return
            self._origin = min(self._pending)
        first = self._origin if self._processed is None else self._processed + 1
        for t in range(first, low_watermark + 1):
            self._process_tick(t)
        if self._processed is None or low_watermark > self._processed:
            self._processed = low_watermark

    def _process_tick(self, t: TimeInstant) -> None:
        positions = self._pending.pop(t, {})
        current: Set[Tuple[ObjectId, ObjectId]] = set()
        if positions and self._router.num_shards > 1:
            for pair in pairs_within_distance(positions, self._threshold):
                if self._router.shard_of(pair[0]) != self._router.shard_of(pair[1]):
                    current.add(pair)
        for pair in self._previous_pairs - current:
            start = self._open.pop(pair)
            self._closed.append(Contact(pair[0], pair[1], TimeInterval(start, t - 1)))
        for pair in current - self._previous_pairs:
            self._open[pair] = t
        self._previous_pairs = current

    @property
    def processed_through(self) -> Optional[TimeInstant]:
        """Last tick the cross-shard join has evaluated."""
        return self._processed

    @property
    def closed_contacts(self) -> List[Contact]:
        """Cross-shard contacts whose pairs have separated, in close order."""
        return list(self._closed)

    @property
    def num_closed_contacts(self) -> int:
        """Number of closed cross-shard contacts so far."""
        return len(self._closed)

    def open_contacts(self) -> List[Contact]:
        """Cross-shard contacts still open, clipped to the processed tick."""
        if self._processed is None:
            return []
        return [
            Contact(pair[0], pair[1], TimeInterval(start, self._processed))
            for pair, start in self._open.items()
        ]

    def contacts_through_low(self) -> List[Contact]:
        """Every cross-shard contact of the globally complete prefix."""
        return self._closed + self.open_contacts()

    def manifest(self) -> dict:
        """JSON-ready record of the joined prefix, for the coordinator manifest.

        Pending (not-yet-joined) ticks are deliberately excluded: they are
        not part of the globally complete prefix, and on resume the shards'
        own WALs are authoritative for everything past ``processed``.
        """
        return {
            "origin": self._origin,
            "processed": self._processed,
            "closed": [
                (c.first, c.second, c.validity.start, c.validity.end)
                for c in self._closed
            ],
            "open": [
                (pair[0], pair[1], start) for pair, start in self._open.items()
            ],
        }


class ShardedStreamIngestor:
    """Partitions one event stream across N shard ingestors.

    ``sinks`` may be bare :class:`StreamIngestor` instances or richer objects
    (e.g. per-shard streaming services) exposing ``ingest(batch)`` and an
    ``ingestor`` attribute; feeding through the sink keeps any per-sink state
    (delta sync, caches) consistent.  Two delivery modes are supported:

    * :meth:`ingest` — lockstep: one global batch is routed into per-shard
      sub-batches that all carry the batch's watermark, validated against
      every shard *before* any shard is touched (all-or-nothing), then fed.
    * :meth:`route_batch` + :meth:`ingest_shard` — decoupled: sub-batches are
      delivered per shard in any interleaving (each shard still in watermark
      order), letting shards skew; the low-watermark trails the laggard.
    """

    def __init__(
        self,
        sinks: Sequence[ShardSink],
        router: ShardRouter,
        distance_threshold: float,
    ) -> None:
        if not sinks:
            raise ShardingError("a sharded ingestor needs at least one shard")
        if router.num_shards != len(sinks):
            raise ShardingError(
                f"router is sized for {router.num_shards} shards "
                f"but {len(sinks)} sinks were provided"
            )
        self._sinks = list(sinks)
        self._ingestors: List[StreamIngestor] = [
            sink if isinstance(sink, StreamIngestor) else sink.ingestor
            for sink in self._sinks
        ]
        self.router = router
        self._tracker = CrossShardContactTracker(router, distance_threshold)
        self._batches = 0
        self._ingest_seconds = 0.0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of ingestion shards."""
        return len(self._sinks)

    @property
    def shards(self) -> List[StreamIngestor]:
        """The per-shard ingestors, in shard order."""
        return list(self._ingestors)

    def route_batch(self, batch: StreamBatch) -> List[StreamBatch]:
        """Split a batch into one sub-batch per shard (same watermark).

        Every shard gets a sub-batch — an empty one still advances that
        shard's watermark, which is what keeps the low-watermark moving.
        """
        per_shard: List[List[SampleEvent]] = [[] for _ in self._sinks]
        for event in batch.samples:
            per_shard[self.router.assign(event)].append(event)
        return [
            StreamBatch(tuple(samples), watermark=batch.watermark)
            for samples in per_shard
        ]

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, batch: StreamBatch) -> int:
        """Route one global batch to every shard, in lockstep.

        The routed sub-batches are validated against all shards before any
        shard mutates, so a rejected batch (watermark regression, late or
        horizon-breaking samples) leaves the whole sharded ingestor unchanged.
        """
        started = time.perf_counter()
        sub_batches = self.route_batch(batch)
        for ingestor, sub in zip(self._ingestors, sub_batches):
            ingestor.validate_batch(sub)
        for sink, sub in zip(self._sinks, sub_batches):
            sink.ingest(sub, prevalidated=True)
        self._tracker.observe(batch.samples)
        self._tracker.advance(self.low_watermark)
        self._batches += 1
        self._ingest_seconds += time.perf_counter() - started
        return len(batch.samples)

    def validate_shard_batch(self, shard_id: int, batch: StreamBatch) -> None:
        """Check that a sub-batch belongs on ``shard_id`` without mutating state.

        Raises :class:`~repro.core.errors.ShardingError` for an out-of-range
        shard id or any sample the router would send elsewhere.  Split out of
        :meth:`ingest_shard` so callers that produced the sub-batch via
        :meth:`route_batch` (the asyncio ingest loops drain queues filled that
        way) can skip the per-sample re-check with ``prevalidated=True``.
        """
        if not 0 <= shard_id < self.num_shards:
            raise ShardingError(
                f"shard id {shard_id} out of range [0, {self.num_shards})"
            )
        for event in batch.samples:
            routed = self.router.assign(event)
            if routed != shard_id:
                raise ShardingError(
                    f"sample for object {event.object_id} routes to shard "
                    f"{routed}, not {shard_id}"
                )

    def ingest_shard(
        self, shard_id: int, batch: StreamBatch, prevalidated: bool = False
    ) -> int:
        """Deliver one shard's sub-batch independently (skewed delivery).

        ``batch`` must contain only samples that route to ``shard_id`` —
        normally a sub-batch produced by :meth:`route_batch`.  ``prevalidated``
        promises the caller just did exactly that and skips the routing
        re-check (the shard ingestor still validates the stream contract).
        """
        if not prevalidated:
            self.validate_shard_batch(shard_id, batch)
        elif not 0 <= shard_id < self.num_shards:
            raise ShardingError(
                f"shard id {shard_id} out of range [0, {self.num_shards})"
            )
        started = time.perf_counter()
        self._sinks[shard_id].ingest(batch)
        self._tracker.observe(batch.samples)
        self._tracker.advance(self.low_watermark)
        self._batches += 1
        self._ingest_seconds += time.perf_counter() - started
        return len(batch.samples)

    # ------------------------------------------------------------------
    # watermarks
    # ------------------------------------------------------------------
    @property
    def watermarks(self) -> Tuple[Optional[TimeInstant], ...]:
        """Per-shard watermarks, in shard order (``None`` = not started)."""
        return tuple(ingestor.watermark for ingestor in self._ingestors)

    @property
    def low_watermark(self) -> Optional[TimeInstant]:
        """The minimum per-shard watermark: the globally complete prefix end.

        ``None`` until every shard has ingested at least one batch.
        """
        marks = self.watermarks
        if any(mark is None for mark in marks):
            return None
        return min(marks)  # type: ignore[type-var]

    @property
    def origin(self) -> Optional[TimeInstant]:
        """First tick observed by any shard (``None`` before data arrives)."""
        origins = [i.origin for i in self._ingestors if i.origin is not None]
        return min(origins) if origins else None

    # ------------------------------------------------------------------
    # cross-shard contacts
    # ------------------------------------------------------------------
    @property
    def tracker(self) -> CrossShardContactTracker:
        """The cross-shard contact tracker (joined through the low-watermark)."""
        return self._tracker

    def cross_shard_contacts(self) -> List[Contact]:
        """Every cross-shard contact of the prefix ``[origin, low_watermark]``."""
        return self._tracker.contacts_through_low()

    # ------------------------------------------------------------------
    # aggregate counters
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Total sample events ingested across all shards."""
        return sum(ingestor.num_events for ingestor in self._ingestors)

    @property
    def shard_events(self) -> Tuple[int, ...]:
        """Events ingested per shard (shard-skew visibility)."""
        return tuple(ingestor.num_events for ingestor in self._ingestors)

    @property
    def num_batches(self) -> int:
        """Batches (global or per-shard) delivered so far."""
        return self._batches

    @property
    def num_flushed_intervals(self) -> int:
        """Temporal grid intervals flushed across all shards."""
        return sum(ingestor.num_flushed_intervals for ingestor in self._ingestors)

    @property
    def ingest_seconds(self) -> float:
        """Wall-clock seconds spent ingesting (routing + shards + tracker)."""
        return self._ingest_seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStreamIngestor(shards={self.num_shards}, "
            f"router={self.router.name!r}, events={self.num_events}, "
            f"low_watermark={self.low_watermark})"
        )
