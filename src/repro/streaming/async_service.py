"""The asyncio serving front-end: non-blocking ingest, background merges.

The paper's target scenarios (contact tracing, vehicle surveillance) are
online services, and the synchronous facades stall every query behind every
merge: folding a delta into a fresh snapshot rebuilds contact extents and —
on the single-shard path — a whole ReachGraph, during which ``ingest`` and
``query`` are simply blocked.  :class:`AsyncReachabilityService` removes that
stall with three moves:

* **per-shard ingest loops** — ``await ingest(batch)`` routes the batch into
  per-shard sub-batches and enqueues each on a *bounded* :class:`asyncio.Queue`
  (capacity :attr:`~repro.core.config.StreamingConfig.async_queue_depth`);
  a full queue suspends the producer, which is the backpressure contract.
  One asyncio task per shard drains its queue in FIFO order, so each shard
  still sees a watermark-ordered stream;
* **background merges** — the build half of a merge is a pure function of the
  ingestor's frozen prefix (see :func:`~repro.streaming.service.build_merge`),
  so when a shard's merge policy fires the loop captures the prefix
  synchronously, builds the new snapshot structures in a worker thread via
  :func:`asyncio.to_thread` (a complete overlay in rebuild mode, just the
  query-side artifacts in LSM mode), and only then
* **adopts the result atomically** —
  :meth:`~repro.streaming.service.StreamingReachabilityService.adopt_merge`
  (overlay swap, or LSM run append plus compaction) and the coordinator-cache
  invalidation run without yielding control, so a concurrently awaited
  ``query(...)`` observes either the old snapshot or the fully adopted new
  one, never a mixture, and never blocks on the rebuild.

Queries always answer over the globally complete prefix clipped at the
cross-shard low-watermark (the sharded evaluation path), which is what makes
the correctness contract identical to the synchronous services: at any
awaited point, ``await query(q)`` equals the batch ``reference`` evaluator
over ``[origin, low_watermark]`` — merges in flight or not.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import (
    ContactConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from ..core.errors import StreamingError
from ..core.types import QueryResult, ReachabilityQuery, TimeInstant
from ..trajectory.model import TrajectoryDataset
from .coordinator import (
    ShardedReachabilityService,
    ShardedSnapshotQueryService,
    ShardedStats,
)
from .events import SampleEvent, StreamBatch
from .service import (
    MergeInputs,
    StreamingReachabilityService,
    build_merge,
)
from .source import replay

__all__ = ["AsyncReachabilityService", "AsyncStats"]


@dataclass(frozen=True, slots=True)
class AsyncStats:
    """Counters describing the state of the asyncio front-end.

    ``sharded`` carries the underlying coordinator's counters (events,
    watermarks, cache hits...); the remaining fields are async-only.
    """

    sharded: ShardedStats
    pending_batches: int
    background_merges: int
    cancelled_merges: int
    merges_in_flight: int

    @property
    def events(self) -> int:
        """Total sample events ingested (mirrors the sharded counter)."""
        return self.sharded.events

    @property
    def events_per_second(self) -> float:
        """Ingest throughput over the life of the service."""
        return self.sharded.events_per_second


class AsyncReachabilityService:
    """Async ``await ingest`` / ``await query`` facade over sharded streaming.

    Wraps a :class:`ShardedReachabilityService` (auto-merge disabled) and owns
    the event-loop choreography: bounded per-shard queues, one ingest task per
    shard, background merge tasks, and the atomic snapshot swap.  Usable as an
    async context manager::

        async with AsyncReachabilityService.for_dataset(dataset) as service:
            await service.ingest(batch)
            result = await service.query(query)

    All coroutine methods must be awaited on the same running event loop; the
    only work that leaves that loop is the pure snapshot rebuild, which runs
    in a worker thread over inputs captured up front.
    """

    def __init__(
        self,
        environment_size: Tuple[float, float],
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
        name: str = "async-stream",
    ) -> None:
        self.streaming_config = streaming_config or StreamingConfig()
        self.name = name
        self._storage_config = storage_config
        # shards=1 is served by the same coordinator: a one-shard sharded
        # service is bit-identical to the single service (the sharding suite
        # proves it), and it keeps the async choreography uniform.
        self._service = ShardedReachabilityService(
            environment_size,
            contact_config=contact_config,
            grid_config=grid_config,
            streaming_config=self.streaming_config,
            storage_config=storage_config,
            name=name,
            auto_merge=False,
        )
        depth = self.streaming_config.async_queue_depth
        self._queues: List["asyncio.Queue[StreamBatch]"] = [
            asyncio.Queue(maxsize=depth) for _ in range(self._service.num_shards)
        ]
        self._loops: List["asyncio.Task[None]"] = []
        self._merge_tasks: Dict[int, "asyncio.Task[None]"] = {}
        self._gate = asyncio.Event()
        self._gate.set()
        self._ingest_lock = asyncio.Lock()
        self._started = False
        self._closed = False
        self._error: Optional[BaseException] = None
        self._background_merges = 0
        self._cancelled_merges = 0

    # ------------------------------------------------------------------
    # constructors / context management
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        dataset: TrajectoryDataset,
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> "AsyncReachabilityService":
        """A service sized for (but not yet fed with) a dataset's environment."""
        return cls(
            environment_size=dataset.environment_size,
            contact_config=contact_config,
            grid_config=grid_config,
            streaming_config=streaming_config,
            storage_config=storage_config,
            name=f"{dataset.name}-async",
        )

    @classmethod
    def reopen(
        cls, storage_config: StorageConfig, name: str = "async-stream"
    ) -> ShardedSnapshotQueryService:
        """Reopen the state a closed async service left behind (read-only).

        :meth:`aclose` closes the wrapped sharded service durably — every
        shard overlay plus the coordinator manifest — so recovery is exactly
        the sharded restore path: a :class:`ShardedSnapshotQueryService`
        answering through the committed global low-watermark.  The result is
        synchronous (no event loop needed): what survives a crash is data,
        not the asyncio choreography around it.
        """
        return ShardedSnapshotQueryService.open(storage_config, name)

    async def __aenter__(self) -> "AsyncReachabilityService":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def start(self) -> None:
        """Spawn the per-shard ingest loops (idempotent; needs a running loop).

        Called automatically by the first ``await ingest(...)``; exposed so a
        server can start the loops eagerly at boot.
        """
        if self._closed:
            raise StreamingError(f"{self.name}: service is closed")
        if self._started:
            return
        self._loops = [
            asyncio.get_running_loop().create_task(
                self._ingest_loop(shard_id), name=f"{self.name}-ingest{shard_id}"
            )
            for shard_id in range(self._service.num_shards)
        ]
        self._started = True

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    async def ingest(self, events: StreamBatch | Iterable[SampleEvent]) -> int:
        """Route one batch onto the per-shard queues (backpressure-aware).

        A bare iterable of sample events is wrapped into a batch whose
        watermark is its latest sample time.  Returns once every sub-batch is
        *enqueued* — which may suspend when a queue is full — not once it is
        ingested; ``await drain()`` is the flush barrier.  Contract violations
        (watermark regressions, late samples) are detected by the shard ingest
        loops and re-raised here on the next call.
        """
        self._raise_pending_error()
        if self._closed:
            raise StreamingError(f"{self.name}: service is closed")
        self.start()
        batch = (
            events
            if isinstance(events, StreamBatch)
            else StreamBatch.of(tuple(events))
        )
        # Serialize producers: concurrent ingest() calls must not interleave
        # their per-shard puts, or shard FIFOs could see batches out of
        # watermark order.
        async with self._ingest_lock:
            for queue, sub in zip(self._queues, self._service.route_batch(batch)):
                await queue.put(sub)
        return len(batch.samples)

    async def _ingest_loop(self, shard_id: int) -> None:
        queue = self._queues[shard_id]
        while True:
            await self._gate.wait()
            sub = await queue.get()
            try:
                # Rejection is atomic at the shard (validate-then-mutate), so
                # later queued batches may still apply after a bad one; only
                # the first error is kept for reporting.
                self._service.ingest_shard(shard_id, sub, prevalidated=True)
                self._maybe_schedule_merges()
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # surfaced on the next API call
                if self._error is None:
                    self._error = exc
            finally:
                queue.task_done()

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    # ------------------------------------------------------------------
    # background merges
    # ------------------------------------------------------------------
    def _maybe_schedule_merges(self) -> None:
        for shard_id in self._service.shards_due_for_merge():
            if shard_id not in self._merge_tasks:
                self._schedule_merge(shard_id)

    def _schedule_merge(self, shard_id: int) -> "asyncio.Task[None]":
        low = self._service.low_watermark
        assert low is not None, "merges are only scheduled past the low-watermark"
        shard = self._service.shard_services[shard_id]
        # Capture the frozen prefix synchronously; everything after this line
        # may interleave with further ingestion into the same shard.
        inputs = shard.prepare_merge(through=low)
        task = asyncio.get_running_loop().create_task(
            self._run_merge(shard, inputs),
            name=f"{self.name}-merge{shard_id}@{inputs.bound}",
        )
        # Bookkeeping lives in the done-callback, not the coroutine: a task
        # cancelled before its first step never runs any coroutine code, and
        # the shard must not stay marked merge-in-flight when that happens.
        task.add_done_callback(
            lambda done, shard_id=shard_id: self._on_merge_done(shard_id, done)
        )
        self._merge_tasks[shard_id] = task
        return task

    async def _run_merge(
        self, shard: StreamingReachabilityService, inputs: MergeInputs
    ) -> None:
        try:
            # The coordinator's shared MergeExecutor decides where the pure
            # build runs: the inline executor would build right here on the
            # event loop, so it is wrapped in to_thread (preserving the
            # pre-executor behaviour — one background thread per merge);
            # thread/process pools already run elsewhere, so the loop just
            # awaits their future.
            executor = self._service.merge_executor
            if executor.kind == "inline":
                build = await asyncio.to_thread(
                    build_merge, inputs, self._storage_config
                )
            else:
                build = await asyncio.wrap_future(
                    executor.submit(inputs, self._storage_config)
                )
            # Atomic from here to the end of the invalidation: no await, so a
            # concurrent query sees the old snapshot or the new one, never a
            # half-adopted state or a stale cached answer.  A cancellation
            # landing during the build discards the result unadopted; the
            # live overlay is never touched, so the service stays consistent.
            shard.adopt_merge(build, inputs)
            self._service.invalidate_cache()
            self._background_merges += 1
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            if self._error is None:
                self._error = exc

    def _on_merge_done(self, shard_id: int, task: "asyncio.Task[None]") -> None:
        if self._merge_tasks.get(shard_id) is task:
            del self._merge_tasks[shard_id]
        if task.cancelled():
            self._cancelled_merges += 1

    def schedule_merge(self) -> List["asyncio.Task[None]"]:
        """Force background merges for every shard with unfrozen prefix.

        The async analog of the synchronous ``merge()``: schedules (but does
        not await) one background merge per eligible shard at the current
        low-watermark, skipping shards that already have one in flight.
        Returns the in-flight merge tasks; ``await drain()`` (or awaiting the
        tasks directly) is the completion barrier.
        """
        if self._service.low_watermark is None:
            raise StreamingError("nothing to merge: no shard has a watermark yet")
        for shard_id in self._service.shards_due_for_merge(force=True):
            if shard_id not in self._merge_tasks:
                self._schedule_merge(shard_id)
        return list(self._merge_tasks.values())

    async def cancel_in_flight_merges(self) -> int:
        """Cancel every in-flight background merge; returns how many.

        A cancelled merge never adopts its half-built snapshot, so the live
        overlay (and every answer derived from it) is untouched.
        """
        tasks = list(self._merge_tasks.values())
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
            await asyncio.sleep(0)  # let done-callbacks settle the counters
        return len(tasks)

    async def _await_in_flight_merges(self) -> None:
        tasks = list(self._merge_tasks.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
            await asyncio.sleep(0)  # let done-callbacks settle the counters

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    async def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer a query over the globally complete prefix.

        Never blocks on a rebuild: background merges run in worker threads
        and only their atomic adoption touches the overlays this reads.
        Answers are clipped at the cross-shard low-watermark, exactly like
        the synchronous sharded service.
        """
        if self._closed:
            raise StreamingError(f"{self.name}: service is closed")
        return self._service.query(query)

    # ------------------------------------------------------------------
    # flow control / shutdown
    # ------------------------------------------------------------------
    def pause_ingest(self) -> None:
        """Stall every ingest loop before its next dequeue (quiesce hook)."""
        self._gate.clear()

    def resume_ingest(self) -> None:
        """Release loops stalled by :meth:`pause_ingest`."""
        self._gate.set()

    async def drain(self) -> AsyncStats:
        """Flush: await empty queues and in-flight merges, surface errors.

        After ``drain()`` returns, every enqueued batch has been ingested (or
        rejected — in which case the rejection is raised here) and no merge is
        in flight, so the low-watermark reflects everything fed so far.

        Raises :class:`StreamingError` instead of deadlocking when called
        with batches enqueued while :meth:`pause_ingest` is in effect — a
        paused loop can never empty its queue.
        """
        if self._started:
            if not self._gate.is_set() and self.pending_batches > 0:
                raise StreamingError(
                    f"{self.name}: drain() with ingest paused and "
                    f"{self.pending_batches} batch(es) enqueued would never "
                    "complete; call resume_ingest() first"
                )
            for queue in self._queues:
                await queue.join()
            await self._await_in_flight_merges()
        self._raise_pending_error()
        return self.stats

    async def replay(self, source) -> AsyncStats:
        """Ingest an entire stream source (or dataset / canned name), then drain."""
        if isinstance(source, (TrajectoryDataset, str)):
            source = replay(source, batch_ticks=self.streaming_config.batch_ticks)
        for batch in source.batches():
            await self.ingest(batch)
        return await self.drain()

    async def aclose(self) -> None:
        """Graceful shutdown: drain, stop the ingest loops, close storage.

        In-flight merges are awaited (not cancelled); afterwards every
        coroutine method raises.  Safe to call more than once.  A
        :meth:`pause_ingest` still in effect is released first — shutdown
        must flush, not deadlock behind a forgotten pause (this also covers
        the ``async with`` exit path when the body raises mid-pause).
        Closing the wrapped sharded service last is what makes persistent
        backends durable: each shard's overlay manifest is written and its
        devices fsync'd, so buffered writes cannot be lost with the process;
        :meth:`reopen` restores the result as a read-only query service.
        """
        if self._closed:
            return
        try:
            self.resume_ingest()
            await self.drain()
        finally:
            self._closed = True
            for task in self._loops:
                task.cancel()
            if self._loops:
                await asyncio.gather(*self._loops, return_exceptions=True)
            await self._await_in_flight_merges()
            self._service.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def service(self) -> ShardedReachabilityService:
        """The wrapped synchronous sharded service (overlays, ingestor)."""
        return self._service

    @property
    def num_shards(self) -> int:
        """Number of ingestion shards (= ingest loops = queues)."""
        return self._service.num_shards

    @property
    def watermark(self) -> Optional[TimeInstant]:
        """The global low-watermark (the single-service interface alias)."""
        return self._service.low_watermark

    @property
    def low_watermark(self) -> Optional[TimeInstant]:
        """Minimum per-shard watermark: the end of the answerable prefix."""
        return self._service.low_watermark

    @property
    def pending_batches(self) -> int:
        """Sub-batches sitting in the per-shard queues right now."""
        return sum(queue.qsize() for queue in self._queues)

    @property
    def merges_in_flight(self) -> int:
        """Background merges currently building or awaiting adoption."""
        return len(self._merge_tasks)

    @property
    def background_merges(self) -> int:
        """Background merges adopted so far."""
        return self._background_merges

    @property
    def cancelled_merges(self) -> int:
        """Background merges cancelled before adoption."""
        return self._cancelled_merges

    @property
    def num_merges(self) -> int:
        """Merges performed across all shards (adopted ones only)."""
        return self._service.num_merges

    @property
    def stats(self) -> AsyncStats:
        """A snapshot of the service's counters."""
        return AsyncStats(
            sharded=self._service.stats,
            pending_batches=self.pending_batches,
            background_merges=self._background_merges,
            cancelled_merges=self._cancelled_merges,
            merges_in_flight=self.merges_in_flight,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncReachabilityService(name={self.name!r}, "
            f"shards={self.num_shards}, low_watermark={self.low_watermark}, "
            f"pending={self.pending_batches}, in_flight={self.merges_in_flight})"
        )
