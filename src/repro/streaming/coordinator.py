"""The sharded queryable facade: fan-in ingestion, fan-out querying.

:class:`ShardedReachabilityService` is the scale-out counterpart of
:class:`~repro.streaming.service.StreamingReachabilityService`: one
:class:`~repro.streaming.service.StreamingReachabilityService` per shard
(ingestor + snapshot/delta overlay, auto-merge disabled), glued together by a
:class:`~repro.streaming.sharding.ShardedStreamIngestor` that routes batches,
tracks per-shard watermarks, and joins cross-shard contacts through the
global low-watermark.

A query fans out across every shard overlay: each contributes its snapshot ∪
delta ∪ open contacts overlapping the query interval (IO charged per shard
and summed), the coordinator adds the cross-shard contacts, clips everything
at the low-watermark — beyond it some shard's data is still incomplete — and
runs the earliest-arrival sweep over the union.  Merges are triggered per
shard by the configured merge policy, always freezing the prefix at the
global low-watermark so a snapshot never claims instants another shard has
not yet delivered.

Correctness contract: at any point of the stream, ``query(q)`` returns the
same verdict (and earliest reach time) as the batch ``reference`` evaluator
over the contact network of the globally complete prefix
``[origin, low_watermark]`` — for any shard count and router.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.config import (
    ContactConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from ..core.errors import StreamingError
from ..core.types import QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from ..baselines.reference import earliest_arrival
from ..contacts.network import Contact
from ..trajectory.model import TrajectoryDataset
from .events import SampleEvent, StreamBatch
from .policy import make_policy
from .router import ShardRouter, make_router
from .service import QueryResultCache, StreamingReachabilityService
from .sharding import ShardedStreamIngestor
from .source import replay

__all__ = ["ShardedReachabilityService", "ShardedStats"]


@dataclass(frozen=True, slots=True)
class ShardedStats:
    """Counters describing the state of a sharded streaming service."""

    shards: int
    router: str
    events: int
    batches: int
    merges: int
    queries: int
    cache_hits: int
    cache_misses: int
    low_watermark: Optional[TimeInstant]
    watermarks: Tuple[Optional[TimeInstant], ...]
    shard_events: Tuple[int, ...]
    delta_contacts: int
    snapshot_contacts: int
    cross_shard_contacts: int
    flushed_intervals: int
    ingest_seconds: float

    @property
    def events_per_second(self) -> float:
        """Ingest throughput over the life of the service."""
        if self.ingest_seconds <= 0:
            return 0.0
        return self.events / self.ingest_seconds


class ShardedReachabilityService:
    """Accepts an ordered event stream across N shards, stays queryable."""

    def __init__(
        self,
        environment_size: Tuple[float, float],
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
        name: str = "sharded-stream",
        auto_merge: bool = True,
    ) -> None:
        self.contact_config = contact_config or ContactConfig()
        self.grid_config = grid_config or ReachGridConfig()
        self.streaming_config = streaming_config or StreamingConfig()
        self.name = name
        # The asyncio front-end turns auto_merge off and schedules per-shard
        # merges as background tasks itself (same policy, same low-watermark
        # bound) so that ingestion never stalls behind a rebuild.
        self.auto_merge = auto_merge
        num_shards = self.streaming_config.shards
        # Per-shard stacks: the coordinator owns the query cache and triggers
        # merges itself (bounded at the low-watermark), and per-shard
        # ReachGraph fast paths are pointless — a shard's snapshot is never
        # individually authoritative once contacts can span shards.
        shard_config = replace(
            self.streaming_config,
            query_cache_size=0,
            build_reachgraph_on_merge=False,
        )
        self._shards: List[StreamingReachabilityService] = [
            StreamingReachabilityService(
                environment_size,
                contact_config=self.contact_config,
                grid_config=self.grid_config,
                streaming_config=shard_config,
                storage_config=storage_config,
                name=f"{name}-shard{index}",
                auto_merge=False,
            )
            for index in range(num_shards)
        ]
        router = make_router(
            self.streaming_config.router,
            num_shards,
            environment_size,
            self.grid_config.spatial_resolution,
        )
        self._ingestor = ShardedStreamIngestor(
            self._shards, router, self.contact_config.distance_threshold
        )
        self._policies = [make_policy(shard_config) for _ in range(num_shards)]
        self._cache = QueryResultCache(self.streaming_config.query_cache_size)
        self._queries = 0
        self._closed = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        dataset: TrajectoryDataset,
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> "ShardedReachabilityService":
        """A service sized for (but not yet fed with) a dataset's environment."""
        return cls(
            environment_size=dataset.environment_size,
            contact_config=contact_config,
            grid_config=grid_config,
            streaming_config=streaming_config,
            storage_config=storage_config,
            name=f"{dataset.name}-sharded",
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: StreamBatch | Iterable[SampleEvent]) -> int:
        """Route one batch across every shard, in lockstep.

        A bare iterable of sample events is wrapped into a batch whose
        watermark is its latest sample time.  All-or-nothing: a batch that
        violates the ingestion contract leaves every shard unchanged.
        """
        self._ensure_open()
        batch = (
            events
            if isinstance(events, StreamBatch)
            else StreamBatch.of(tuple(events))
        )
        before = self._ingestor.low_watermark
        count = self._ingestor.ingest(batch)
        if self._ingestor.low_watermark != before:
            self._cache.clear()
        self._maybe_merge_shards()
        return count

    def ingest_shard(
        self, shard_id: int, batch: StreamBatch, prevalidated: bool = False
    ) -> int:
        """Deliver one shard's sub-batch independently (skewed delivery).

        ``prevalidated`` promises the batch came out of :meth:`route_batch`
        for exactly ``shard_id`` (the asyncio ingest loops feed queues filled
        that way) and skips the per-sample routing re-check.
        """
        self._ensure_open()
        before = self._ingestor.low_watermark
        count = self._ingestor.ingest_shard(shard_id, batch, prevalidated=prevalidated)
        if self._ingestor.low_watermark != before:
            self._cache.clear()
        self._maybe_merge_shards()
        return count

    def route_batch(self, batch: StreamBatch) -> List[StreamBatch]:
        """Split a batch into per-shard sub-batches (for skewed delivery)."""
        return self._ingestor.route_batch(batch)

    def drain(self, source) -> ShardedStats:
        """Ingest an entire stream source (or dataset / canned name) to its end."""
        if isinstance(source, (TrajectoryDataset, str)):
            source = replay(source, batch_ticks=self.streaming_config.batch_ticks)
        for batch in source.batches():
            self.ingest(batch)
        return self.stats

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------
    def _maybe_merge_shards(self) -> None:
        if not self.auto_merge:
            return
        low = self._ingestor.low_watermark
        if low is None:
            return
        merged = False
        for shard_id in self.shards_due_for_merge():
            self._shards[shard_id].merge(through=low)
            merged = True
        if merged:
            self._cache.clear()

    def shards_due_for_merge(self, force: bool = False) -> List[int]:
        """Shard ids whose merge policy fires at the current low-watermark.

        The decision half of the auto-merge loop, split out so the asyncio
        front-end can apply the same policy while running the actual merges
        as background tasks instead of inline.  ``force`` skips the policy
        and returns every shard that *could* merge (has data inside the
        frozen prefix and an unfrozen tail) — the eligibility half alone.
        """
        low = self._ingestor.low_watermark
        if low is None:
            return []
        due: List[int] = []
        for shard_id, (shard, policy) in enumerate(zip(self._shards, self._policies)):
            ingestor = shard.ingestor
            if ingestor.origin is None or low < ingestor.origin:
                continue  # shard has no data inside the frozen prefix yet
            if shard.overlay.snapshot_watermark == low:
                continue  # nothing new to freeze for this shard
            if force or policy.should_merge(shard.merge_context(low_watermark=low)):
                due.append(shard_id)
        return due

    def invalidate_cache(self) -> None:
        """Drop every cached query result (bumps the cache generation).

        Called by the asyncio front-end the moment a background merge swaps a
        shard snapshot in, so no stale pre-swap answer outlives the swap.
        """
        self._cache.clear()

    def merge(self) -> None:
        """Force-merge every eligible shard at the current global low-watermark.

        Shards whose snapshot already sits at the low-watermark are skipped —
        re-freezing an identical prefix would rebuild bit-identical contact
        extents for nothing.
        """
        self._ensure_open()
        low = self._ingestor.low_watermark
        if low is None:
            raise StreamingError("nothing to merge: no shard has a watermark yet")
        for shard_id in self.shards_due_for_merge(force=True):
            self._shards[shard_id].merge(through=low)
        self._cache.clear()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer a query over the globally complete prefix.

        Contacts beyond the low-watermark are clipped away: some shard has
        not promised completeness there, so including them would let answers
        depend on delivery skew instead of on data.
        """
        self._ensure_open()
        self._queries += 1
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        result = self._evaluate(query)
        self._cache.put(query, result)
        return result

    def _evaluate(self, query: ReachabilityQuery) -> QueryResult:
        cpu_started = time.process_time()
        interval = query.interval
        low = self._ingestor.low_watermark
        contacts: List[Contact] = []
        io_total = 0.0
        random_ios = 0
        sequential_ios = 0
        if low is not None:
            for shard in self._shards:
                overlay = shard.overlay
                storage = overlay.storage
                storage.reset_for_query()
                io_before = storage.snapshot()
                collected = overlay.collect_contacts(
                    interval, open_contacts=shard.ingestor.open_contacts()
                )
                io_delta = storage.charge_since(io_before)
                io_total += io_delta.normalized(storage.config.sequential_cost)
                random_ios += io_delta.random_reads
                sequential_ios += io_delta.sequential_reads
                contacts.extend(self._clip(collected, low, interval))
            contacts.extend(
                self._clip(self._ingestor.cross_shard_contacts(), low, interval)
            )

        if query.source == query.destination:
            reachable, earliest = True, interval.start
        else:
            arrival = earliest_arrival(
                contacts, query.source, interval, destination=query.destination
            )
            earliest = arrival.get(query.destination)
            reachable = earliest is not None

        return QueryResult(
            reachable=reachable,
            earliest_time=earliest,
            io=io_total,
            random_ios=random_ios,
            sequential_ios=sequential_ios,
            cpu_seconds=time.process_time() - cpu_started,
            visited=len(contacts),
        )

    @staticmethod
    def _clip(
        contacts: Sequence[Contact], low: TimeInstant, interval: TimeInterval
    ) -> List[Contact]:
        """Clip contacts at the low-watermark, keeping interval-relevant ones."""
        clipped: List[Contact] = []
        for contact in contacts:
            bounded = contact.clipped(contact.validity.start, low)
            if bounded is not None and bounded.validity.overlaps(interval):
                clipped.append(bounded)
        return clipped

    # ------------------------------------------------------------------
    # durability (persistent backends)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist every shard's queryable state (no-op on the sim backend)."""
        for shard in self._shards:
            shard.flush()

    def close(self) -> None:
        """Flush and release every shard's storage systems.  Idempotent.

        Afterwards the coordinator must not ingest or answer queries (the
        cache is dropped so a closed service cannot serve stale answers).
        """
        if self._closed:
            return
        for shard in self._shards:
            shard.close()
        self._cache.clear()
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise StreamingError(f"sharded service {self.name!r} is closed")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of ingestion shards."""
        return self._ingestor.num_shards

    @property
    def router(self) -> ShardRouter:
        """The shard router partitioning the stream."""
        return self._ingestor.router

    @property
    def ingestor(self) -> ShardedStreamIngestor:
        """The sharded ingestor (routing, watermarks, cross-shard tracker)."""
        return self._ingestor

    @property
    def shard_services(self) -> List[StreamingReachabilityService]:
        """The per-shard service stacks, in shard order."""
        return list(self._shards)

    @property
    def query_cache(self) -> QueryResultCache:
        """The coordinator's query-result cache (hit/miss/generation counters)."""
        return self._cache

    @property
    def low_watermark(self) -> Optional[TimeInstant]:
        """Minimum per-shard watermark: the end of the answerable prefix."""
        return self._ingestor.low_watermark

    @property
    def watermark(self) -> Optional[TimeInstant]:
        """Alias for :attr:`low_watermark` (the single-service interface)."""
        return self._ingestor.low_watermark

    @property
    def watermarks(self) -> Tuple[Optional[TimeInstant], ...]:
        """Per-shard watermarks, in shard order."""
        return self._ingestor.watermarks

    @property
    def num_merges(self) -> int:
        """Merges performed across all shards."""
        return sum(shard.num_merges for shard in self._shards)

    @property
    def stats(self) -> ShardedStats:
        """A snapshot of the coordinator's counters."""
        return ShardedStats(
            shards=self.num_shards,
            router=self.router.name,
            events=self._ingestor.num_events,
            batches=self._ingestor.num_batches,
            merges=self.num_merges,
            queries=self._queries,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            low_watermark=self._ingestor.low_watermark,
            watermarks=self._ingestor.watermarks,
            shard_events=self._ingestor.shard_events,
            delta_contacts=sum(s.overlay.delta_size for s in self._shards),
            snapshot_contacts=sum(s.overlay.snapshot_size for s in self._shards),
            cross_shard_contacts=self._ingestor.tracker.num_closed_contacts,
            flushed_intervals=self._ingestor.num_flushed_intervals,
            ingest_seconds=self._ingestor.ingest_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedReachabilityService(name={self.name!r}, "
            f"shards={self.num_shards}, router={self.router.name!r}, "
            f"low_watermark={self.low_watermark}, merges={self.num_merges})"
        )
