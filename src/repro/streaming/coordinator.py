"""The sharded queryable facade: fan-in ingestion, fan-out querying.

:class:`ShardedReachabilityService` is the scale-out counterpart of
:class:`~repro.streaming.service.StreamingReachabilityService`: one
:class:`~repro.streaming.service.StreamingReachabilityService` per shard
(ingestor + snapshot/delta overlay, auto-merge disabled), glued together by a
:class:`~repro.streaming.sharding.ShardedStreamIngestor` that routes batches,
tracks per-shard watermarks, and joins cross-shard contacts through the
global low-watermark.

A query fans out across every shard overlay: each contributes its snapshot ∪
delta ∪ open contacts overlapping the query interval (IO charged per shard
and summed), the coordinator adds the cross-shard contacts, clips everything
at the low-watermark — beyond it some shard's data is still incomplete — and
runs the earliest-arrival sweep over the union.  Merges are triggered per
shard by the configured merge policy, always freezing the prefix at the
global low-watermark so a snapshot never claims instants another shard has
not yet delivered.

Correctness contract: at any point of the stream, ``query(q)`` returns the
same verdict (and earliest reach time) as the batch ``reference`` evaluator
over the contact network of the globally complete prefix
``[origin, low_watermark]`` — for any shard count and router.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.config import (
    ContactConfig,
    ReachGridConfig,
    StorageConfig,
    StreamingConfig,
)
from ..core.errors import StreamingError
from ..core.types import QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from ..baselines.reference import earliest_arrival
from ..contacts.network import Contact
from ..storage import BACKEND_FILE_SUFFIX, StorageSystem
from ..testing.faults import crash_point
from ..trajectory.model import TrajectoryDataset
from .events import SampleEvent, StreamBatch
from .parallel import MergeExecutor, make_merge_executor
from .policy import make_policy
from .router import ShardRouter, make_router
from .service import (
    QueryResultCache,
    SnapshotQueryService,
    StreamingReachabilityService,
)
from .sharding import ShardedStreamIngestor
from .source import replay

__all__ = [
    "ShardedReachabilityService",
    "ShardedSnapshotQueryService",
    "ShardedStats",
]

#: Metadata key under which the coordinator persists its own manifest
#: (shard count, router, committed low-watermark, cross-shard tracker log).
_COORDINATOR_MANIFEST_KEY = "coordinator-manifest"


@dataclass(frozen=True, slots=True)
class ShardedStats:
    """Counters describing the state of a sharded streaming service."""

    shards: int
    router: str
    events: int
    batches: int
    merges: int
    queries: int
    cache_hits: int
    cache_misses: int
    low_watermark: Optional[TimeInstant]
    watermarks: Tuple[Optional[TimeInstant], ...]
    shard_events: Tuple[int, ...]
    delta_contacts: int
    snapshot_contacts: int
    cross_shard_contacts: int
    flushed_intervals: int
    ingest_seconds: float

    @property
    def events_per_second(self) -> float:
        """Ingest throughput over the life of the service."""
        if self.ingest_seconds <= 0:
            return 0.0
        return self.events / self.ingest_seconds


class ShardedReachabilityService:
    """Accepts an ordered event stream across N shards, stays queryable."""

    def __init__(
        self,
        environment_size: Tuple[float, float],
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
        name: str = "sharded-stream",
        auto_merge: bool = True,
    ) -> None:
        self.contact_config = contact_config or ContactConfig()
        self.grid_config = grid_config or ReachGridConfig()
        self.streaming_config = streaming_config or StreamingConfig()
        self.name = name
        # The asyncio front-end turns auto_merge off and schedules per-shard
        # merges as background tasks itself (same policy, same low-watermark
        # bound) so that ingestion never stalls behind a rebuild.
        self.auto_merge = auto_merge
        num_shards = self.streaming_config.shards
        # Per-shard stacks: the coordinator owns the query cache and triggers
        # merges itself (bounded at the low-watermark), and per-shard
        # ReachGraph fast paths are pointless — a shard's snapshot is never
        # individually authoritative once contacts can span shards.
        shard_config = replace(
            self.streaming_config,
            query_cache_size=0,
            build_reachgraph_on_merge=False,
        )
        # One merge executor for the whole coordinator: per-shard pools would
        # multiply worker processes by the shard count, and the coordinator
        # drives every shard merge itself anyway (the shards never auto-merge).
        self._merge_executor = make_merge_executor(
            self.streaming_config.merge_executor, self.streaming_config.merge_workers
        )
        self._storage_config = storage_config
        self._shards: List[StreamingReachabilityService] = [
            StreamingReachabilityService(
                environment_size,
                contact_config=self.contact_config,
                grid_config=self.grid_config,
                streaming_config=shard_config,
                storage_config=storage_config,
                name=f"{name}-shard{index}",
                auto_merge=False,
                merge_executor=self._merge_executor,
            )
            for index in range(num_shards)
        ]
        router = make_router(
            self.streaming_config.router,
            num_shards,
            environment_size,
            self.grid_config.spatial_resolution,
        )
        self._ingestor = ShardedStreamIngestor(
            self._shards, router, self.contact_config.distance_threshold
        )
        self._policies = [make_policy(shard_config) for _ in range(num_shards)]
        self._cache = QueryResultCache(self.streaming_config.query_cache_size)
        # The coordinator's own device holds what no shard can reconstruct:
        # the cross-shard contact log and the committed global low-watermark.
        self._storage = StorageSystem(
            storage_config, name=f"{name}-coordinator", attach=False
        )
        self._queries = 0
        self._closed = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        dataset: TrajectoryDataset,
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        storage_config: StorageConfig | None = None,
    ) -> "ShardedReachabilityService":
        """A service sized for (but not yet fed with) a dataset's environment."""
        return cls(
            environment_size=dataset.environment_size,
            contact_config=contact_config,
            grid_config=grid_config,
            streaming_config=streaming_config,
            storage_config=storage_config,
            name=f"{dataset.name}-sharded",
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: StreamBatch | Iterable[SampleEvent]) -> int:
        """Route one batch across every shard, in lockstep.

        A bare iterable of sample events is wrapped into a batch whose
        watermark is its latest sample time.  All-or-nothing: a batch that
        violates the ingestion contract leaves every shard unchanged.
        """
        self._ensure_open()
        batch = (
            events
            if isinstance(events, StreamBatch)
            else StreamBatch.of(tuple(events))
        )
        before = self._ingestor.low_watermark
        count = self._ingestor.ingest(batch)
        if self._ingestor.low_watermark != before:
            self._cache.clear()
        self._maybe_merge_shards()
        return count

    def ingest_shard(
        self, shard_id: int, batch: StreamBatch, prevalidated: bool = False
    ) -> int:
        """Deliver one shard's sub-batch independently (skewed delivery).

        ``prevalidated`` promises the batch came out of :meth:`route_batch`
        for exactly ``shard_id`` (the asyncio ingest loops feed queues filled
        that way) and skips the per-sample routing re-check.
        """
        self._ensure_open()
        before = self._ingestor.low_watermark
        count = self._ingestor.ingest_shard(shard_id, batch, prevalidated=prevalidated)
        if self._ingestor.low_watermark != before:
            self._cache.clear()
        self._maybe_merge_shards()
        return count

    def route_batch(self, batch: StreamBatch) -> List[StreamBatch]:
        """Split a batch into per-shard sub-batches (for skewed delivery)."""
        return self._ingestor.route_batch(batch)

    def drain(self, source) -> ShardedStats:
        """Ingest an entire stream source (or dataset / canned name) to its end."""
        if isinstance(source, (TrajectoryDataset, str)):
            source = replay(source, batch_ticks=self.streaming_config.batch_ticks)
        for batch in source.batches():
            self.ingest(batch)
        return self.stats

    # ------------------------------------------------------------------
    # merges
    # ------------------------------------------------------------------
    def _maybe_merge_shards(self) -> None:
        if not self.auto_merge:
            return
        low = self._ingestor.low_watermark
        if low is None:
            return
        due = self.shards_due_for_merge()
        if due:
            self._merge_shards(due, low)
            self._cache.clear()

    def _merge_shards(self, shard_ids: Sequence[int], low: TimeInstant) -> None:
        """Merge the given shards at ``low``, builds fanned out in parallel.

        The coordinator drives the three-phase protocol itself so one shared
        :class:`~repro.streaming.parallel.MergeExecutor` can overlap the pure
        builds of *different shards* — the sharded counterpart of the async
        service overlapping a build with ingestion.  Phase order is what
        keeps it bit-identical to the serial loop it replaces: every
        ``prepare_merge`` happens up front on this thread (each captures a
        prefix frozen at the same ``low``, so later captures are unaffected
        by earlier shards having built or adopted), the builds run
        concurrently on the executor, and adoptions apply serially here, in
        shard order, preserving the ``merge-pre-adopt`` crash point before
        each one.
        """
        prepared = [
            (shard_id, self._shards[shard_id].prepare_merge(through=low))
            for shard_id in shard_ids
        ]
        submitted = [
            (shard_id, inputs, self._merge_executor.submit(inputs, self._storage_config))
            for shard_id, inputs in prepared
        ]
        for shard_id, inputs, future in submitted:
            build = future.result()
            crash_point("merge-pre-adopt")
            self._shards[shard_id].adopt_merge(build, inputs)

    def shards_due_for_merge(self, force: bool = False) -> List[int]:
        """Shard ids whose merge policy fires at the current low-watermark.

        The decision half of the auto-merge loop, split out so the asyncio
        front-end can apply the same policy while running the actual merges
        as background tasks instead of inline.  ``force`` skips the policy
        and returns every shard that *could* merge (has data inside the
        frozen prefix and an unfrozen tail) — the eligibility half alone.
        """
        low = self._ingestor.low_watermark
        if low is None:
            return []
        due: List[int] = []
        for shard_id, (shard, policy) in enumerate(zip(self._shards, self._policies)):
            ingestor = shard.ingestor
            if ingestor.origin is None or low < ingestor.origin:
                continue  # shard has no data inside the frozen prefix yet
            if shard.overlay.snapshot_watermark == low:
                continue  # nothing new to freeze for this shard
            if force or policy.should_merge(shard.merge_context(low_watermark=low)):
                due.append(shard_id)
        return due

    def invalidate_cache(self) -> None:
        """Drop every cached query result (bumps the cache generation).

        Called by the asyncio front-end the moment a background merge swaps a
        shard snapshot in, so no stale pre-swap answer outlives the swap.
        """
        self._cache.clear()

    def merge(self) -> None:
        """Force-merge every eligible shard at the current global low-watermark.

        Shards whose snapshot already sits at the low-watermark are skipped —
        re-freezing an identical prefix would rebuild bit-identical contact
        extents for nothing.
        """
        self._ensure_open()
        low = self._ingestor.low_watermark
        if low is None:
            raise StreamingError("nothing to merge: no shard has a watermark yet")
        self._merge_shards(self.shards_due_for_merge(force=True), low)
        self._cache.clear()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer a query over the globally complete prefix.

        Contacts beyond the low-watermark are clipped away: some shard has
        not promised completeness there, so including them would let answers
        depend on delivery skew instead of on data.
        """
        self._ensure_open()
        self._queries += 1
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        result = self._evaluate(query)
        self._cache.put(query, result)
        return result

    def _evaluate(self, query: ReachabilityQuery) -> QueryResult:
        cpu_started = time.process_time()
        interval = query.interval
        low = self._ingestor.low_watermark
        contacts: List[Contact] = []
        io_total = 0.0
        random_ios = 0
        sequential_ios = 0
        if low is not None:
            for shard in self._shards:
                overlay = shard.overlay
                storage = overlay.storage
                storage.reset_for_query()
                io_before = storage.snapshot()
                collected = overlay.collect_contacts(
                    interval, open_contacts=shard.ingestor.open_contacts()
                )
                io_delta = storage.charge_since(io_before)
                io_total += io_delta.normalized(storage.config.sequential_cost)
                random_ios += io_delta.random_reads
                sequential_ios += io_delta.sequential_reads
                contacts.extend(self._clip(collected, low, interval))
            contacts.extend(
                self._clip(self._ingestor.cross_shard_contacts(), low, interval)
            )

        if query.source == query.destination:
            reachable, earliest = True, interval.start
        else:
            arrival = earliest_arrival(
                contacts, query.source, interval, destination=query.destination
            )
            earliest = arrival.get(query.destination)
            reachable = earliest is not None

        return QueryResult(
            reachable=reachable,
            earliest_time=earliest,
            io=io_total,
            random_ios=random_ios,
            sequential_ios=sequential_ios,
            cpu_seconds=time.process_time() - cpu_started,
            visited=len(contacts),
        )

    @staticmethod
    def _clip(
        contacts: Sequence[Contact], low: TimeInstant, interval: TimeInterval
    ) -> List[Contact]:
        """Clip contacts at the low-watermark, keeping interval-relevant ones."""
        clipped: List[Contact] = []
        for contact in contacts:
            bounded = contact.clipped(contact.validity.start, low)
            if bounded is not None and bounded.validity.overlaps(interval):
                clipped.append(bounded)
        return clipped

    # ------------------------------------------------------------------
    # durability (persistent backends)
    # ------------------------------------------------------------------
    def _coordinator_manifest(self) -> dict:
        return {
            "shards": self.num_shards,
            "router": self.router.name,
            "low_watermark": self._ingestor.low_watermark,
            "watermarks": list(self._ingestor.watermarks),
            "distance_threshold": self.contact_config.distance_threshold,
            "tracker": self._ingestor.tracker.manifest(),
        }

    def flush(self) -> None:
        """Persist the sharded state durably (a no-op on the sim backend).

        Every shard flushes first (each shard's own manifest is its commit
        point); only then is the coordinator manifest — shard count, router,
        committed low-watermark, and the cross-shard contact log — written
        and flushed.  A crash between the two steps leaves the shards
        durably *ahead* of the coordinator manifest, never behind it, and
        :meth:`ShardedSnapshotQueryService.open` clips at the committed low,
        so the window is recoverable.
        """
        for shard in self._shards:
            shard.flush()
        crash_point("sharded-flush-post-shards")
        self._storage.put_metadata(
            _COORDINATOR_MANIFEST_KEY, self._coordinator_manifest()
        )
        self._storage.flush()

    def close(self) -> None:
        """Flush and release every storage system.  Idempotent.

        Everything is made durable by the initial :meth:`flush` *before* any
        shard's device is released, so a crash between per-shard closes
        loses nothing — the not-yet-closed shards are already flushed.
        Afterwards the coordinator must not ingest or answer queries (the
        cache is dropped so a closed service cannot serve stale answers);
        with a persistent backend the state reopens via
        :meth:`ShardedSnapshotQueryService.open`.
        """
        if self._closed:
            return
        self.flush()
        self._merge_executor.close()
        for shard in self._shards:
            shard.close()
            crash_point("shard-close")
        self._storage.close()
        self._cache.clear()
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise StreamingError(f"sharded service {self.name!r} is closed")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of ingestion shards."""
        return self._ingestor.num_shards

    @property
    def router(self) -> ShardRouter:
        """The shard router partitioning the stream."""
        return self._ingestor.router

    @property
    def ingestor(self) -> ShardedStreamIngestor:
        """The sharded ingestor (routing, watermarks, cross-shard tracker)."""
        return self._ingestor

    @property
    def shard_services(self) -> List[StreamingReachabilityService]:
        """The per-shard service stacks, in shard order."""
        return list(self._shards)

    @property
    def query_cache(self) -> QueryResultCache:
        """The coordinator's query-result cache (hit/miss/generation counters)."""
        return self._cache

    @property
    def merge_executor(self) -> MergeExecutor:
        """The executor shared by every shard's merge builds."""
        return self._merge_executor

    @property
    def storage(self) -> StorageSystem:
        """The coordinator's own storage system (manifest + cross-shard log)."""
        return self._storage

    @property
    def low_watermark(self) -> Optional[TimeInstant]:
        """Minimum per-shard watermark: the end of the answerable prefix."""
        return self._ingestor.low_watermark

    @property
    def watermark(self) -> Optional[TimeInstant]:
        """Alias for :attr:`low_watermark` (the single-service interface)."""
        return self._ingestor.low_watermark

    @property
    def watermarks(self) -> Tuple[Optional[TimeInstant], ...]:
        """Per-shard watermarks, in shard order."""
        return self._ingestor.watermarks

    @property
    def num_merges(self) -> int:
        """Merges performed across all shards."""
        return sum(shard.num_merges for shard in self._shards)

    @property
    def stats(self) -> ShardedStats:
        """A snapshot of the coordinator's counters."""
        return ShardedStats(
            shards=self.num_shards,
            router=self.router.name,
            events=self._ingestor.num_events,
            batches=self._ingestor.num_batches,
            merges=self.num_merges,
            queries=self._queries,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            low_watermark=self._ingestor.low_watermark,
            watermarks=self._ingestor.watermarks,
            shard_events=self._ingestor.shard_events,
            delta_contacts=sum(s.overlay.delta_size for s in self._shards),
            snapshot_contacts=sum(s.overlay.snapshot_size for s in self._shards),
            cross_shard_contacts=self._ingestor.tracker.num_closed_contacts,
            flushed_intervals=self._ingestor.num_flushed_intervals,
            ingest_seconds=self._ingestor.ingest_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedReachabilityService(name={self.name!r}, "
            f"shards={self.num_shards}, router={self.router.name!r}, "
            f"low_watermark={self.low_watermark}, merges={self.num_merges})"
        )


class ShardedSnapshotQueryService:
    """A read-only sharded service reopened from persistent storage.

    The sharded counterpart of
    :class:`~repro.streaming.service.SnapshotQueryService`: every shard's
    overlay (snapshot runs, delta, open contacts) is reopened through the
    unsharded restore path, the cross-shard contact log is materialized from
    the coordinator manifest, and queries run the same fan-out/clip/sweep as
    the live coordinator — answered through the *committed* global
    low-watermark.  Shards may have flushed state past that low (a crash can
    land between the per-shard flushes and the coordinator manifest write);
    clipping at the committed low keeps answers bit-identical to the batch
    reference over the prefix the coordinator actually promised.
    """

    def __init__(
        self,
        storage: StorageSystem,
        shards: Sequence[SnapshotQueryService],
        cross_contacts: Sequence[Contact],
        low_watermark: Optional[TimeInstant],
        watermarks: Tuple[Optional[TimeInstant], ...],
    ) -> None:
        self._storage = storage
        self._shards = list(shards)
        self._cross_contacts = list(cross_contacts)
        self._low_watermark = low_watermark
        self._watermarks = watermarks
        self._queries = 0

    @classmethod
    def open(
        cls, storage_config: StorageConfig, name: str = "sharded-stream"
    ) -> "ShardedSnapshotQueryService":
        """Reopen the persisted state of the sharded service named ``name``.

        ``storage_config`` must use a persistent backend and the same
        ``storage_dir`` the original service wrote to.  The coordinator
        device is looked up as ``<name>-coordinator``, the shard overlays as
        ``<name>-shard<i>-overlay``.
        """
        if storage_config.backend == "sim" or storage_config.storage_dir is None:
            raise StreamingError(
                "reopening needs a persistent backend and a real storage_dir"
            )
        suffix = BACKEND_FILE_SUFFIX[storage_config.backend]
        device_path = os.path.join(
            storage_config.storage_dir, f"{name}-coordinator{suffix}"
        )
        missing = StreamingError(
            f"no persisted coordinator manifest found for service {name!r} "
            f"in {storage_config.storage_dir!r} (was the service flushed?)"
        )
        if not os.path.exists(device_path + ".manifest"):
            raise missing
        storage = StorageSystem(storage_config, name=f"{name}-coordinator")
        shards: List[SnapshotQueryService] = []
        # One guard over the whole restore: a corrupt manifest or a failed
        # shard reopen must not leak the devices opened so far.
        try:
            manifest = storage.get_metadata(_COORDINATOR_MANIFEST_KEY)
            if manifest is None:
                raise missing
            for index in range(manifest["shards"]):
                shards.append(
                    SnapshotQueryService.open(storage_config, f"{name}-shard{index}")
                )
            tracker = manifest["tracker"]
            cross: List[Contact] = [
                Contact(first, second, TimeInterval(start, end))
                for first, second, start, end in tracker["closed"]
            ]
            processed = tracker["processed"]
            if processed is not None:
                cross.extend(
                    Contact(first, second, TimeInterval(start, processed))
                    for first, second, start in tracker["open"]
                )
            return cls(
                storage,
                shards,
                cross,
                manifest["low_watermark"],
                tuple(manifest["watermarks"]),
            )
        except BaseException:
            for shard in shards:
                shard.close()
            storage.release()
            raise

    def query(self, query: ReachabilityQuery) -> QueryResult:
        """Answer a query over the committed globally complete prefix."""
        self._queries += 1
        cpu_started = time.process_time()
        interval = query.interval
        low = self._low_watermark
        contacts: List[Contact] = []
        io_total = 0.0
        random_ios = 0
        sequential_ios = 0
        if low is not None:
            for shard in self._shards:
                shard_storage = shard.storage
                shard_storage.reset_for_query()
                io_before = shard_storage.snapshot()
                collected = shard.overlay.collect_contacts(
                    interval, open_contacts=shard.open_contacts
                )
                io_delta = shard_storage.charge_since(io_before)
                io_total += io_delta.normalized(shard_storage.config.sequential_cost)
                random_ios += io_delta.random_reads
                sequential_ios += io_delta.sequential_reads
                contacts.extend(
                    ShardedReachabilityService._clip(collected, low, interval)
                )
            contacts.extend(
                ShardedReachabilityService._clip(
                    self._cross_contacts, low, interval
                )
            )

        if query.source == query.destination:
            reachable, earliest = True, interval.start
        else:
            arrival = earliest_arrival(
                contacts, query.source, interval, destination=query.destination
            )
            earliest = arrival.get(query.destination)
            reachable = earliest is not None

        return QueryResult(
            reachable=reachable,
            earliest_time=earliest,
            io=io_total,
            random_ios=random_ios,
            sequential_ios=sequential_ios,
            cpu_seconds=time.process_time() - cpu_started,
            visited=len(contacts),
        )

    @property
    def num_shards(self) -> int:
        """Number of reopened shard overlays."""
        return len(self._shards)

    @property
    def shard_services(self) -> List[SnapshotQueryService]:
        """The reopened per-shard query services, in shard order."""
        return list(self._shards)

    @property
    def cross_shard_contacts(self) -> List[Contact]:
        """The restored cross-shard contacts (committed prefix only)."""
        return list(self._cross_contacts)

    @property
    def low_watermark(self) -> Optional[TimeInstant]:
        """The committed global low-watermark answers are clipped at."""
        return self._low_watermark

    @property
    def watermark(self) -> Optional[TimeInstant]:
        """Alias for :attr:`low_watermark` (the single-service interface)."""
        return self._low_watermark

    @property
    def watermarks(self) -> Tuple[Optional[TimeInstant], ...]:
        """Per-shard watermarks as of the committed coordinator manifest."""
        return self._watermarks

    @property
    def storage(self) -> StorageSystem:
        """The reopened coordinator storage system."""
        return self._storage

    def close(self) -> None:
        """Release every reopened device (the state stays on disk).

        Write-free, like the unsharded reopened service: nothing here
        mutated the persisted state, so no manifest is rewritten.
        """
        for shard in self._shards:
            shard.close()
        self._storage.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedSnapshotQueryService(shards={self.num_shards}, "
            f"low_watermark={self._low_watermark})"
        )
