"""Incremental ingestion: grid appends and the online contact join.

:class:`StreamIngestor` consumes watermark-ordered batches of sample events
and maintains, tick by tick:

* **ReachGrid tail append** — samples are bucketed into the spatiotemporal
  cells of the *current* temporal interval in an in-memory memtable; when the
  watermark crosses an interval boundary the completed interval's cells are
  flushed to the simulated disk in the same interval-ordered placement the
  batch builder uses (Section 4.1's disk layout makes append-at-the-tail
  natural: later intervals always land after earlier ones).
* **Incremental contact extraction** — the same grid-hash join the offline
  builder runs (:func:`repro.contacts.join.pairs_within_distance`), evaluated
  once per newly complete tick.  Runs of consecutive in-contact ticks are kept
  open until the pair separates, at which point a closed
  :class:`~repro.contacts.network.Contact` is emitted for the delta overlay.

Splitting a contact's validity interval at a merge boundary is semantically
lossless for reachability (transmission happens at a single instant, so
``[s, e]`` and ``[s, m] + [m+1, e]`` admit exactly the same transmissions);
the ingestor therefore never needs to reopen or rewrite history, which is what
keeps ingestion strictly append-only.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.config import ContactConfig, ReachGridConfig, StorageConfig
from ..core.errors import StreamingError, WatermarkRegressionError
from ..core.types import ObjectId, Point, TimeInstant, TimeInterval
from ..contacts.join import pairs_within_distance
from ..contacts.network import Contact
from ..reachgrid.cells import clamped_spatial_cell, grid_axis_cells
from ..storage import StorageSystem
from ..testing.faults import crash_point
from ..trajectory.model import Trajectory, TrajectoryDataset
from .events import SampleEvent, StreamBatch

__all__ = ["StreamIngestor"]

#: Metadata key under which the ingestor checkpoints its WAL position.
_INGEST_CHECKPOINT_KEY = "ingest-checkpoint"

#: On-disk record of one streamed sample: (object_id, t, x, y) — identical to
#: the batch ReachGrid record layout so readers need not care who wrote it.
SampleRecord = Tuple[ObjectId, TimeInstant, float, float]

#: A streamed grid cell key: (temporal interval index, column, row).
CellKey = Tuple[int, int, int]


class StreamIngestor:
    """Consumes sample-event batches, maintaining grid cells and contacts."""

    def __init__(
        self,
        environment_size: Tuple[float, float],
        contact_config: ContactConfig | None = None,
        grid_config: ReachGridConfig | None = None,
        storage_config: StorageConfig | None = None,
        name: str = "stream",
        storage: StorageSystem | None = None,
    ) -> None:
        if environment_size[0] <= 0 or environment_size[1] <= 0:
            raise StreamingError("environment size must be positive in both axes")
        self.environment_size = (float(environment_size[0]), float(environment_size[1]))
        self.contact_config = contact_config or ContactConfig()
        self.grid_config = grid_config or ReachGridConfig()
        self.name = name
        if storage is not None:
            # The resume path (:meth:`restore`): reattach to the previous
            # incarnation's device and its cataloged files instead of
            # creating fresh ones (attach=False would delete them).
            self.storage = storage
            self._cells_file = self.storage.blockfile(f"{name}-grid-cells")
            self._journal = self.storage.blockfile(f"{name}-journal")
        else:
            self.storage = StorageSystem(
                storage_config, name=f"{name}-grid", attach=False
            )
            self._cells_file = self.storage.new_blockfile(f"{name}-grid-cells")
            self._journal = self.storage.new_blockfile(f"{name}-journal")

        # WAL position: batches journaled so far, and (during replay) how
        # many grid intervals the previous incarnation already flushed.
        self._journal_entries = 0
        self._replaying = False
        self._flushed_floor = 0

        # Stream position: the origin tick (set by the first batch), the
        # watermark (last complete tick), and per-tick pending positions.
        self._origin: Optional[TimeInstant] = None
        self._watermark: Optional[TimeInstant] = None
        self._pending: Dict[TimeInstant, Dict[ObjectId, Point]] = {}

        # Dense per-object position buffers for prefix materialization.
        self._positions: Dict[ObjectId, List[Point]] = {}
        self._starts: Dict[ObjectId, TimeInstant] = {}

        # Grid memtable: cells of temporal intervals not yet flushed.
        self._memtable: Dict[int, Dict[Tuple[int, int], List[SampleRecord]]] = {}
        self._flushed_intervals = 0

        # Incremental join state.
        self._previous_pairs: Set[Tuple[ObjectId, ObjectId]] = set()
        self._open: Dict[Tuple[ObjectId, ObjectId], TimeInstant] = {}
        self._closed: List[Contact] = []

        self._num_events = 0
        self._ingest_seconds = 0.0

    # ------------------------------------------------------------------
    # grid geometry (streaming variant: origin-anchored, horizon-free)
    # ------------------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Number of spatial grid columns."""
        return grid_axis_cells(
            self.environment_size[0], self.grid_config.spatial_resolution
        )

    @property
    def num_rows(self) -> int:
        """Number of spatial grid rows."""
        return grid_axis_cells(
            self.environment_size[1], self.grid_config.spatial_resolution
        )

    def temporal_index(self, t: TimeInstant) -> int:
        """Index of the temporal grid interval containing tick ``t``."""
        if self._origin is None:
            raise StreamingError("no batch ingested yet; the grid has no origin")
        return (t - self._origin) // self.grid_config.temporal_resolution

    def _spatial_cell(self, position: Point) -> Tuple[int, int]:
        return clamped_spatial_cell(
            position,
            self.grid_config.spatial_resolution,
            self.num_columns,
            self.num_rows,
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, batch: StreamBatch, prevalidated: bool = False) -> int:
        """Consume one batch: buffer samples, advance the watermark.

        Returns the number of sample events ingested.  Batches must arrive in
        non-decreasing watermark order; samples must not be late (at or below
        the previous watermark) or duplicated.  Ingestion is atomic: the whole
        batch is validated before any state is touched, so a rejected batch
        (:class:`WatermarkRegressionError`, a late sample, a dense-horizon
        break) leaves the ingestor exactly as it was and can be corrected and
        re-sent.  ``prevalidated`` promises the caller *just* ran
        :meth:`validate_batch` on this batch (the sharded coordinator
        validates every shard's sub-batch before feeding any shard) and skips
        the re-check.
        """
        started = time.perf_counter()
        if not prevalidated:
            self.validate_batch(batch)
        if not self._replaying:
            # Journal the batch before mutating state: every accepted batch
            # is re-ingestable from the WAL once a checkpoint names it.
            self._journal.append_extent(
                (self._journal_entries, batch.watermark),
                [
                    (event.object_id, event.time, event.position.x, event.position.y)
                    for event in batch.samples
                ],
            )
            self._journal_entries += 1
        for event in batch.samples:
            self._buffer_sample(event)
        self._advance_watermark(batch.watermark)
        self._num_events += len(batch.samples)
        self._ingest_seconds += time.perf_counter() - started
        return len(batch.samples)

    def validate_batch(self, batch: StreamBatch) -> None:
        """Check a batch against the ingestion contract without mutating state.

        Raises :class:`~repro.core.errors.WatermarkRegressionError` when the
        batch's watermark lies below the current watermark (accepting it would
        corrupt the interval flushing already performed), and
        :class:`~repro.core.errors.StreamingError` for late samples or samples
        that break an object's dense horizon.  A batch that validates cleanly
        is guaranteed to be accepted in full by :meth:`ingest`.
        """
        if self._watermark is not None and batch.watermark < self._watermark:
            raise WatermarkRegressionError(batch.watermark, self._watermark)
        expected: Dict[ObjectId, TimeInstant] = {}
        for event in batch.samples:
            if self._watermark is not None and event.time <= self._watermark:
                raise StreamingError(
                    f"late sample for object {event.object_id} at t={event.time} "
                    f"(watermark already at {self._watermark})"
                )
            next_time = expected.get(event.object_id)
            if next_time is None:
                positions = self._positions.get(event.object_id)
                if positions is not None:
                    next_time = self._starts[event.object_id] + len(positions)
            if next_time is not None and event.time != next_time:
                raise StreamingError(
                    f"object {event.object_id} sample at t={event.time} breaks "
                    f"its dense horizon (expected t={next_time})"
                )
            expected[event.object_id] = event.time + 1

    def ingest_all(self, batches: Iterable[StreamBatch]) -> int:
        """Consume every batch of a stream source; returns total events."""
        total = 0
        for batch in batches:
            total += self.ingest(batch)
        return total

    def _buffer_sample(self, event: SampleEvent) -> None:
        # Contract checks already ran in validate_batch; this is pure mutation.
        positions = self._positions.get(event.object_id)
        if positions is None:
            self._positions[event.object_id] = [event.position]
            self._starts[event.object_id] = event.time
        else:
            positions.append(event.position)
        self._pending.setdefault(event.time, {})[event.object_id] = event.position

    def _advance_watermark(self, watermark: TimeInstant) -> None:
        if self._origin is None and self._pending:
            self._origin = min(self._pending)
        if self._origin is not None:
            if self._watermark is None:
                first = self._origin
            else:
                first = max(self._watermark + 1, self._origin)
            for t in range(first, watermark + 1):
                self._process_tick(t)
        if self._watermark is None or watermark > self._watermark:
            self._watermark = watermark
        self._flush_complete_intervals()

    def _process_tick(self, t: TimeInstant) -> None:
        positions = self._pending.pop(t, {})
        # Grid memtable append (current temporal interval's cells).
        interval_index = self.temporal_index(t)
        cells = self._memtable.setdefault(interval_index, {})
        for object_id in sorted(positions):
            position = positions[object_id]
            record: SampleRecord = (object_id, t, position.x, position.y)
            cells.setdefault(self._spatial_cell(position), []).append(record)
        # Incremental contact join at tick t.
        current = set(pairs_within_distance(positions, self.contact_config.distance_threshold)) if positions else set()
        for pair in self._previous_pairs - current:
            start = self._open.pop(pair)
            self._closed.append(Contact(pair[0], pair[1], TimeInterval(start, t - 1)))
        for pair in current - self._previous_pairs:
            self._open[pair] = t
        self._previous_pairs = current

    def _flush_complete_intervals(self) -> None:
        """Write memtable cells of fully elapsed temporal intervals to disk."""
        if self._watermark is None or self._origin is None:
            return
        rt = self.grid_config.temporal_resolution
        for interval_index in sorted(self._memtable):
            interval_end = self._origin + (interval_index + 1) * rt - 1
            if interval_end > self._watermark:
                break
            cells = self._memtable.pop(interval_index)
            if self._flushed_intervals < self._flushed_floor:
                # Journal replay: this interval's cells are already cataloged
                # on the device from the previous incarnation — re-appending
                # would collide with the restored extents.
                self._flushed_intervals += 1
                continue
            for col_row in sorted(cells):
                records = sorted(cells[col_row], key=lambda r: (r[1], r[0]))
                key: CellKey = (interval_index, col_row[0], col_row[1])
                if self._replaying and self._cells_file.has_extent(key):
                    # Tail replay past a snapshot: the previous incarnation
                    # already placed this cell and the catalog kept it.
                    continue
                self._cells_file.append_extent(key, records)
            self._flushed_intervals += 1

    # ------------------------------------------------------------------
    # durability (WAL checkpoint + replay)
    # ------------------------------------------------------------------
    def _checkpoint(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "environment_size": self.environment_size,
            "distance_threshold": self.contact_config.distance_threshold,
            "temporal_resolution": self.grid_config.temporal_resolution,
            "spatial_resolution": self.grid_config.spatial_resolution,
            "journal_entries": self._journal_entries,
            "flushed_intervals": self._flushed_intervals,
            "state": self._state_snapshot(),
        }

    def _state_snapshot(self) -> Dict[str, object]:
        """The complete in-memory ingest state, as plain picklable structures.

        What makes WAL truncation sound: once the checkpoint carries this,
        :meth:`restore` no longer needs the journaled prefix — the snapshot
        *is* the replay result — so :meth:`flush` may drop every checkpointed
        journal extent instead of letting the journal grow with the stream.
        """
        return {
            "origin": self._origin,
            "watermark": self._watermark,
            "pending": {
                t: {obj: (p.x, p.y) for obj, p in positions.items()}
                for t, positions in self._pending.items()
            },
            "positions": {
                obj: [(p.x, p.y) for p in positions]
                for obj, positions in self._positions.items()
            },
            "starts": dict(self._starts),
            "memtable": {
                interval: {col_row: list(records) for col_row, records in cells.items()}
                for interval, cells in self._memtable.items()
            },
            "previous_pairs": sorted(self._previous_pairs),
            "open": sorted(self._open.items()),
            "closed": [
                (c.first, c.second, c.validity.start, c.validity.end)
                for c in self._closed
            ],
            "num_events": self._num_events,
            "ingest_seconds": self._ingest_seconds,
        }

    def _load_state(self, state: Dict[str, Any]) -> None:
        """Adopt a checkpointed state snapshot (restore path, no replay)."""
        self._origin = state["origin"]
        self._watermark = state["watermark"]
        self._pending = {
            t: {obj: Point(x, y) for obj, (x, y) in positions.items()}
            for t, positions in state["pending"].items()
        }
        self._positions = {
            obj: [Point(x, y) for x, y in positions]
            for obj, positions in state["positions"].items()
        }
        self._starts = dict(state["starts"])
        self._memtable = {
            interval: {col_row: list(records) for col_row, records in cells.items()}
            for interval, cells in state["memtable"].items()
        }
        self._previous_pairs = {
            (first, second) for first, second in state["previous_pairs"]
        }
        self._open = {
            (first, second): start
            for (first, second), start in state["open"]
        }
        self._closed = [
            Contact(first, second, TimeInterval(start, end))
            for first, second, start, end in state["closed"]
        ]
        self._num_events = state["num_events"]
        self._ingest_seconds = state["ingest_seconds"]

    def flush(self) -> None:
        """Make everything ingested so far durable (no-op on the sim backend).

        Writes the WAL checkpoint — the grid geometry, the journal/interval
        counters, and a complete state snapshot — into the device metadata
        and flushes the device.  Because the snapshot subsumes the journaled
        prefix, every journal extent is *dropped* first (WAL truncation): the
        blocks become reclaimable garbage instead of growing with the
        stream.  The truncation, the checkpoint, and the storage catalog all
        land in the same atomic manifest write, so a crash on either side is
        clean — before the commit the old manifest still names the old
        journal extents and the old checkpoint replays them; after it the
        new checkpoint's snapshot stands alone.
        """
        for key in self._journal.extent_keys():
            self._journal.drop_extent(key)
        self.storage.put_metadata(_INGEST_CHECKPOINT_KEY, self._checkpoint())
        crash_point("wal-truncate-pre-commit")
        self.storage.flush()

    @classmethod
    def restore(
        cls, storage_config: StorageConfig | None, name: str = "stream"
    ) -> "StreamIngestor":
        """Reattach to a flushed ingestor device and replay its WAL.

        Reopens ``<name>-grid`` from ``storage_config``, reads the checkpoint
        written by :meth:`flush`, and re-ingests every journaled batch it
        names — rebuilding the open-contact join state, the position buffers,
        and the grid memtable exactly as they were at the checkpoint.  Raises
        :class:`~repro.core.errors.StreamingError` when no checkpoint exists
        (the service never flushed).
        """
        storage = StorageSystem(storage_config, name=f"{name}-grid")
        try:
            checkpoint = storage.get_metadata(_INGEST_CHECKPOINT_KEY)
            if checkpoint is None:
                raise StreamingError(
                    f"no ingest checkpoint found for service {name!r} "
                    "(was the service flushed?)"
                )
            ingestor = cls(
                tuple(checkpoint["environment_size"]),
                contact_config=ContactConfig(
                    distance_threshold=checkpoint["distance_threshold"]
                ),
                grid_config=ReachGridConfig(
                    temporal_resolution=checkpoint["temporal_resolution"],
                    spatial_resolution=checkpoint["spatial_resolution"],
                ),
                name=name,
                storage=storage,
            )
            state = checkpoint.get("state")
            if state is not None:
                ingestor._load_state(state)
                ingestor._journal_entries = checkpoint["journal_entries"]
                ingestor._replay_tail(checkpoint["journal_entries"])
            else:
                # Pre-truncation checkpoint: the journal still holds the full
                # history, so rebuild the state by replaying it end to end.
                ingestor._replay_journal(
                    checkpoint["journal_entries"], checkpoint["flushed_intervals"]
                )
            return ingestor
        except BaseException:
            storage.close()
            raise

    def _replay_journal(self, entries: int, flushed_intervals: int) -> None:
        self._replaying = True
        self._flushed_floor = flushed_intervals
        try:
            for key in self._journal.extent_keys():
                seq, watermark = key
                if seq >= entries:
                    break  # past the checkpoint: not durably committed
                samples = tuple(
                    SampleEvent(object_id, t, Point(x, y))
                    for object_id, t, x, y in self._journal.read_extent(key)
                )
                self.ingest(StreamBatch(samples, watermark), prevalidated=True)
        finally:
            self._replaying = False
            self._flushed_floor = 0
        self._journal_entries = entries

    def _replay_tail(self, applied: int) -> None:
        """Defensively replay cataloged journal extents past the snapshot.

        With truncation the committed catalog normally holds *no* journal
        extents (the same manifest that named the snapshot dropped them); a
        cataloged extent with ``seq >= applied`` means a manifest paired a
        snapshot with batches it does not cover — replay them on top so no
        durably accepted batch is ever lost.
        """
        self._replaying = True
        try:
            for key in self._journal.extent_keys():
                seq, watermark = key
                if seq < applied:
                    continue  # covered by the snapshot already
                samples = tuple(
                    SampleEvent(object_id, t, Point(x, y))
                    for object_id, t, x, y in self._journal.read_extent(key)
                )
                self.ingest(StreamBatch(samples, watermark), prevalidated=True)
                self._journal_entries = seq + 1
        finally:
            self._replaying = False

    # ------------------------------------------------------------------
    # stream position and contact views
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[TimeInstant]:
        """Last complete tick, or ``None`` before the first batch."""
        return self._watermark

    @property
    def origin(self) -> Optional[TimeInstant]:
        """First tick of the stream, or ``None`` before the first batch."""
        return self._origin

    @property
    def num_events(self) -> int:
        """Total sample events ingested so far."""
        return self._num_events

    @property
    def ingest_seconds(self) -> float:
        """Wall-clock seconds spent inside :meth:`ingest`."""
        return self._ingest_seconds

    @property
    def closed_contacts(self) -> List[Contact]:
        """Contacts whose pairs have separated, in close order."""
        return list(self._closed)

    @property
    def num_closed_contacts(self) -> int:
        """Number of closed contacts emitted so far."""
        return len(self._closed)

    def closed_contacts_since(self, start: int) -> List[Contact]:
        """Closed contacts from position ``start`` onward (in close order).

        Lets incremental consumers (the service's delta sync) read only the
        new tail instead of copying the whole list after every batch.
        """
        return self._closed[start:]

    def open_contacts(self, through: TimeInstant | None = None) -> List[Contact]:
        """Contacts still open, clipped to the current watermark.

        With ``through`` the clip bound is ``min(watermark, through)`` and
        runs opening after ``through`` are dropped — the view a coordinator
        needs when a global low-watermark trails this shard's watermark.
        """
        if self._watermark is None:
            return []
        bound = self._watermark if through is None else min(self._watermark, through)
        return [
            Contact(pair[0], pair[1], TimeInterval(start, bound))
            for pair, start in self._open.items()
            if start <= bound
        ]

    def contacts_through_watermark(self) -> List[Contact]:
        """Every contact observed so far (closed plus open-clipped).

        Up to the lossless splitting of validity intervals, this equals the
        contact network a batch build over the ingested prefix would produce.
        """
        return self._closed + self.open_contacts()

    def contacts_through(self, through: TimeInstant) -> List[Contact]:
        """Every contact of the bounded prefix ``[origin, through]``.

        Like :meth:`contacts_through_watermark` but clipped at ``through``
        (which may trail the watermark): closed contacts starting later are
        dropped, ones straddling the bound are clipped, and open runs are
        clipped to ``min(watermark, through)``.  Splitting at the bound is
        lossless for reachability, so this equals the contact network of a
        batch build over ``[origin, through]`` up to interval splitting.
        """
        clipped: List[Contact] = []
        for contact in self._closed:
            bounded = contact.clipped(contact.validity.start, through)
            if bounded is not None:
                clipped.append(bounded)
        clipped.extend(self.open_contacts(through=through))
        return clipped

    # ------------------------------------------------------------------
    # grid introspection (used by tests and the benchmark)
    # ------------------------------------------------------------------
    @property
    def num_flushed_intervals(self) -> int:
        """Temporal grid intervals flushed from the memtable to disk."""
        return self._flushed_intervals

    @property
    def num_flushed_cells(self) -> int:
        """Grid cell extents written to the simulated disk so far."""
        return self._cells_file.num_extents

    @property
    def journal_blocks(self) -> int:
        """Device blocks the ingest WAL currently holds.

        Bounded by the batches ingested since the last :meth:`flush` —
        truncation drops every journal extent at flush time, so this does
        *not* grow with the stream (the WAL-truncation contract).
        """
        return self._journal.num_blocks

    @property
    def memtable_records(self) -> int:
        """Sample records still staged in the in-memory memtable."""
        return sum(
            len(records)
            for cells in self._memtable.values()
            for records in cells.values()
        )

    def flushed_cell_keys(self) -> List[CellKey]:
        """Keys of the flushed cells in disk-placement order."""
        return self._cells_file.extent_keys()

    def read_cell(self, key: CellKey) -> List[SampleRecord]:
        """Read one flushed cell's records back from the simulated disk."""
        return self._cells_file.read_extent(key)

    # ------------------------------------------------------------------
    # prefix materialization (used by merges)
    # ------------------------------------------------------------------
    def prefix_dataset(
        self,
        name: str | None = None,
        through: TimeInstant | None = None,
    ) -> TrajectoryDataset:
        """Materialize the ingested prefix as a frozen trajectory dataset.

        Requires every observed object to cover the full prefix
        ``[origin, watermark]`` (the replay sources guarantee this); the
        merge path uses the result to rebuild snapshot indexes.  ``through``
        bounds the materialized prefix at an earlier instant — the sharded
        coordinator merges each shard at the global low-watermark, which may
        trail this shard's own watermark.
        """
        if self._watermark is None or self._origin is None:
            raise StreamingError("cannot materialize an empty stream prefix")
        end = self._watermark if through is None else min(self._watermark, through)
        if end < self._origin:
            raise StreamingError(
                f"prefix bound {end} lies before the stream origin {self._origin}"
            )
        expected_length = end - self._origin + 1
        trajectories = []
        for object_id in sorted(self._positions):
            start = self._starts[object_id]
            positions = self._positions[object_id]
            if start != self._origin or len(positions) < expected_length:
                raise StreamingError(
                    f"object {object_id} does not cover the prefix "
                    f"[{self._origin}, {end}]"
                )
            trajectories.append(
                Trajectory(object_id, positions[:expected_length], start_time=start)
            )
        return TrajectoryDataset(
            trajectories,
            environment_size=self.environment_size,
            name=name or f"{self.name}-prefix{end}",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamIngestor(name={self.name!r}, events={self._num_events}, "
            f"watermark={self._watermark}, closed={len(self._closed)}, "
            f"open={len(self._open)})"
        )
