"""Non-immediate contacts (Section 7).

A non-immediate contact from ``oi`` to ``oj`` occurs when ``oj`` visits, within
the item lifetime ``T_t``, a location where ``oi`` had been earlier — the
paper's example is a virus left behind in a bus.  Formally: the distance
between ``oi``'s position at ``t`` and ``oj``'s position at ``t'`` is below
``dT`` with ``t <= t' <= t + T_t``.  The contact is *directed* (the item flows
from the earlier visitor to the later one) and its validity interval is
``[t, t']``.

Extraction follows the paper's recipe — join the *replicated* trajectories:
each position of a potential carrier stays "active" for ``T_t`` ticks and is
joined against the current positions of every other object.  Reachability over
the resulting directed temporal contacts is evaluated with an
earliest-arrival sweep analogous to the reference evaluator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import ContactNetworkError, QueryError
from ..core.types import ObjectId, Point, QueryResult, ReachabilityQuery, TimeInstant, TimeInterval
from ..contacts.join import pairs_within_distance
from ..trajectory.model import TrajectoryDataset

__all__ = [
    "NonImmediateContact",
    "build_non_immediate_contacts",
    "NonImmediateReachability",
]


@dataclass(frozen=True, slots=True)
class NonImmediateContact:
    """A directed non-immediate contact ``carrier --[t, t']--> receiver``."""

    carrier: ObjectId
    receiver: ObjectId
    emit_time: TimeInstant
    receive_time: TimeInstant

    def __post_init__(self) -> None:
        if self.carrier == self.receiver:
            raise ContactNetworkError("a non-immediate contact needs two objects")
        if self.receive_time < self.emit_time:
            raise ContactNetworkError("receive_time cannot precede emit_time")

    @property
    def validity(self) -> TimeInterval:
        """The validity interval ``[t, t']`` of the contact."""
        return TimeInterval(self.emit_time, self.receive_time)


def build_non_immediate_contacts(
    dataset: TrajectoryDataset,
    distance_threshold: float,
    lifetime: int,
    window: Optional[TimeInterval] = None,
) -> List[NonImmediateContact]:
    """Extract every non-immediate contact of a dataset.

    For each receive tick ``t'`` the receiver positions are joined against the
    replicated carrier positions of ticks ``t' - lifetime .. t'``.  The output
    includes the immediate case ``t = t'`` (an item can also pass directly).
    """
    if distance_threshold <= 0:
        raise ContactNetworkError("distance_threshold must be positive")
    if lifetime < 0:
        raise ContactNetworkError("item lifetime must be non-negative")
    horizon = window.intersection(dataset.horizon) if window else dataset.horizon
    if horizon is None:
        raise ContactNetworkError("window does not overlap the dataset horizon")

    contacts: List[NonImmediateContact] = []
    seen: Set[Tuple[ObjectId, ObjectId, TimeInstant, TimeInstant]] = set()
    for receive_time in horizon.instants():
        receiver_positions = dataset.positions_at(receive_time)
        emit_lo = max(horizon.start, receive_time - lifetime)
        for emit_time in range(emit_lo, receive_time + 1):
            carrier_positions = dataset.positions_at(emit_time)
            # Join carrier positions at emit_time against receiver positions at
            # receive_time.  Offsetting carrier ids keeps the two sides apart
            # inside the shared grid-hash join.
            offset = dataset.num_objects + 1
            combined: Dict[ObjectId, Point] = dict(receiver_positions)
            for object_id, position in carrier_positions.items():
                combined[object_id + offset] = position
            for a, b in pairs_within_distance(combined, distance_threshold):
                carrier_raw, receiver_raw = (a, b) if a >= offset else (b, a)
                if carrier_raw < offset or receiver_raw >= offset:
                    continue  # same-side pair
                carrier = carrier_raw - offset
                receiver = receiver_raw
                if carrier == receiver:
                    continue
                key = (carrier, receiver, emit_time, receive_time)
                if key in seen:
                    continue
                seen.add(key)
                contacts.append(
                    NonImmediateContact(carrier, receiver, emit_time, receive_time)
                )
    contacts.sort(key=lambda c: (c.emit_time, c.receive_time, c.carrier, c.receiver))
    return contacts


class NonImmediateReachability:
    """Earliest-arrival reachability over directed non-immediate contacts."""

    def __init__(self, dataset: TrajectoryDataset, contacts: Iterable[NonImmediateContact]) -> None:
        self.dataset = dataset
        self.contacts = sorted(contacts, key=lambda c: c.receive_time)
        self._by_carrier: Dict[ObjectId, List[NonImmediateContact]] = defaultdict(list)
        for contact in self.contacts:
            self._by_carrier[contact.carrier].append(contact)

    def evaluate(self, query: ReachabilityQuery) -> QueryResult:
        """Is the destination reachable through non-immediate contacts?"""
        interval = query.interval.intersection(self.dataset.horizon)
        if interval is None:
            raise QueryError("query interval does not overlap the dataset horizon")
        if query.source == query.destination:
            return QueryResult(reachable=True, earliest_time=interval.start)

        arrival: Dict[ObjectId, TimeInstant] = {query.source: interval.start}
        # Process contacts ordered by receive time; an item emitted at
        # ``emit_time`` requires the carrier to have been reached by then.
        changed = True
        while changed:
            changed = False
            for contact in self.contacts:
                if contact.receive_time > interval.end:
                    break
                if contact.emit_time < interval.start:
                    continue
                carrier_arrival = arrival.get(contact.carrier)
                if carrier_arrival is None or carrier_arrival > contact.emit_time:
                    continue
                current = arrival.get(contact.receiver)
                if current is None or contact.receive_time < current:
                    arrival[contact.receiver] = contact.receive_time
                    changed = True
                    if contact.receiver == query.destination:
                        return QueryResult(
                            reachable=True, earliest_time=contact.receive_time
                        )
        if query.destination in arrival:
            return QueryResult(
                reachable=True, earliest_time=arrival[query.destination]
            )
        return QueryResult(reachable=False)
