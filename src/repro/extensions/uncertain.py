"""Uncertain contact networks and U-ReachGraph (Section 7).

In an uncertain contact network every contact carries a transmission
probability ``p`` (e.g. the probability that an infection actually passes when
two individuals meet).  A contact path's probability is the product of its
contacts' probabilities, and the *probabilistic reachability query* asks
whether a contact path from the source to the destination with probability at
least ``p_T`` exists within the query interval.

Following the paper's sketch, query processing replaces graph traversal by a
shortest-path computation: maximizing a product of probabilities is minimizing
a sum of ``-log p`` weights, so a Dijkstra search over time-respecting states
``(object, time)`` yields the best-path probability.  The state graph is the
event-based equivalent of the probabilistic TEN — holding an item costs
nothing (probability 1), crossing a contact multiplies by its probability —
so the search never materializes the full ``|O| x |T|`` network.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import ContactNetworkError, QueryError
from ..core.types import ObjectId, ReachabilityQuery, TimeInstant, TimeInterval
from ..contacts.network import Contact, ContactNetwork

__all__ = [
    "UncertainContact",
    "UncertainContactNetwork",
    "ProbabilisticQueryResult",
    "UReachGraph",
    "assign_probabilities",
]


@dataclass(frozen=True, slots=True)
class UncertainContact:
    """A contact annotated with a transmission probability."""

    contact: Contact
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ContactNetworkError(
                f"contact probability must be in (0, 1], got {self.probability}"
            )


@dataclass(frozen=True, slots=True)
class ProbabilisticQueryResult:
    """Outcome of a probabilistic reachability query."""

    reachable: bool
    best_probability: float
    threshold: float
    visited: int = 0

    def __bool__(self) -> bool:
        return self.reachable


def assign_probabilities(
    network: ContactNetwork,
    base_probability: float = 0.8,
    duration_bonus: float = 0.02,
    seed: Optional[int] = None,
) -> "UncertainContactNetwork":
    """Annotate every contact of a network with a transmission probability.

    The probability grows with the contact duration (longer exposure, higher
    transmission chance) and is optionally jittered; this mirrors the paper's
    example where the probability "depends on various factors such as the
    distance between the individuals".
    """
    if not 0.0 < base_probability <= 1.0:
        raise ContactNetworkError("base_probability must be in (0, 1]")
    rng = random.Random(seed)
    uncertain = []
    for contact in network.contacts:
        probability = min(
            1.0, base_probability + duration_bonus * (contact.validity.length - 1)
        )
        if seed is not None:
            probability = max(0.05, min(1.0, probability * rng.uniform(0.9, 1.0)))
        uncertain.append(UncertainContact(contact, probability))
    return UncertainContactNetwork(network, uncertain)


class UncertainContactNetwork:
    """A contact network whose contacts carry transmission probabilities."""

    def __init__(
        self, network: ContactNetwork, contacts: Iterable[UncertainContact]
    ) -> None:
        self.network = network
        self.contacts: List[UncertainContact] = list(contacts)
        known = {c.objects: c for c in network.contacts}
        self._by_object: Dict[ObjectId, List[UncertainContact]] = {}
        for uncertain in self.contacts:
            if uncertain.contact.objects not in known:
                raise ContactNetworkError(
                    "uncertain contact does not exist in the base network"
                )
            for object_id in uncertain.contact.objects:
                self._by_object.setdefault(object_id, []).append(uncertain)

    @property
    def horizon(self) -> TimeInterval:
        """Time horizon of the underlying network."""
        return self.network.horizon

    def contacts_of(self, object_id: ObjectId) -> List[UncertainContact]:
        """Uncertain contacts involving one object."""
        return list(self._by_object.get(object_id, ()))


class UReachGraph:
    """Probabilistic reachability evaluation over an uncertain contact network.

    :meth:`evaluate` computes the highest-probability time-respecting contact
    path from the source (released at the query interval start) to the
    destination, and compares it against the threshold ``p_T``.
    """

    def __init__(self, uncertain_network: UncertainContactNetwork) -> None:
        self.uncertain_network = uncertain_network

    # ------------------------------------------------------------------
    # query processing
    # ------------------------------------------------------------------
    def best_path_probability(
        self, source: ObjectId, destination: ObjectId, interval: TimeInterval
    ) -> Tuple[float, int]:
        """Highest contact-path probability from source to destination.

        Returns ``(probability, states_visited)``; the probability is 0.0 when
        no time-respecting path exists inside ``interval``.
        """
        if source == destination:
            return 1.0, 0
        clipped = interval.intersection(self.uncertain_network.horizon)
        if clipped is None:
            raise QueryError("query interval does not overlap the network horizon")

        # Dijkstra over (object, earliest-arrival-time) states with cost
        # -log(probability).  For a fixed object, a state that arrives earlier
        # with at least the same probability dominates; we keep the best cost
        # per (object, time) pair and the per-object Pareto check below.
        start_state = (0.0, source, clipped.start)
        heap: List[Tuple[float, ObjectId, TimeInstant]] = [start_state]
        best: Dict[Tuple[ObjectId, TimeInstant], float] = {(source, clipped.start): 0.0}
        visited = 0

        while heap:
            cost, object_id, arrival = heapq.heappop(heap)
            if best.get((object_id, arrival), math.inf) < cost:
                continue
            visited += 1
            if object_id == destination:
                return math.exp(-cost), visited
            for uncertain in self.uncertain_network.contacts_of(object_id):
                contact = uncertain.contact
                lo = max(contact.validity.start, arrival, clipped.start)
                hi = min(contact.validity.end, clipped.end)
                if lo > hi:
                    continue
                partner = contact.other(object_id)
                next_cost = cost - math.log(uncertain.probability)
                key = (partner, lo)
                if next_cost < best.get(key, math.inf):
                    best[key] = next_cost
                    heapq.heappush(heap, (next_cost, partner, lo))
        return 0.0, visited

    def evaluate(
        self, query: ReachabilityQuery, threshold: float
    ) -> ProbabilisticQueryResult:
        """Is the destination reachable with path probability >= ``threshold``?"""
        if not 0.0 < threshold <= 1.0:
            raise QueryError("probability threshold must be in (0, 1]")
        probability, visited = self.best_path_probability(
            query.source, query.destination, query.interval
        )
        return ProbabilisticQueryResult(
            reachable=probability >= threshold,
            best_probability=probability,
            threshold=threshold,
            visited=visited,
        )
