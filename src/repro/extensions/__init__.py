"""Extensions of Section 7: uncertain and non-immediate contact networks."""

from __future__ import annotations

from .nonimmediate import (
    NonImmediateContact,
    NonImmediateReachability,
    build_non_immediate_contacts,
)
from .uncertain import (
    ProbabilisticQueryResult,
    UncertainContact,
    UncertainContactNetwork,
    UReachGraph,
    assign_probabilities,
)

__all__ = [
    "UncertainContact",
    "UncertainContactNetwork",
    "UReachGraph",
    "ProbabilisticQueryResult",
    "assign_probabilities",
    "NonImmediateContact",
    "NonImmediateReachability",
    "build_non_immediate_contacts",
]
