"""Lightweight observability hooks: merge timings and named counters.

The streaming services already expose *cumulative* ledgers (records written,
merges, compactions) through their ``stats`` dataclasses; what they could not
answer is *where the wall-clock time of a merge went* — how long the pure
build phase ran, on which executor, and how much of it overlapped with other
builds.  :class:`MergeTimings` is that record: every
:class:`~repro.streaming.parallel.MergeExecutor` appends one
:class:`MergeTiming` per completed build, and the cores-vs-throughput scaling
benchmark reads the aggregate back to attribute speedups to actual overlap
instead of guessing from end-to-end wall time.

Everything here is dependency-free and cheap enough to stay on in
production: recording a timing is one list append under a lock, and
:class:`Counters` is a ``dict`` with atomic increments.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Counters", "MergeTiming", "MergeTimings"]


@dataclass(frozen=True, slots=True)
class MergeTiming:
    """One completed merge-build phase, as observed by its executor.

    ``executor`` is the executor kind that ran the build (``inline`` /
    ``thread`` / ``process``), ``mode`` the snapshot write path of the inputs
    (``lsm`` / ``rebuild``), ``queued_seconds`` the time the build spent
    waiting for a worker slot, and ``build_seconds`` the wall time of the
    pure build itself.  ``overlapped`` is True when at least one other build
    was in flight on the same executor at any point of this build — the
    direct witness that multi-worker execution actually ran work
    concurrently rather than serializing it.
    """

    executor: str
    mode: str
    queued_seconds: float
    build_seconds: float
    overlapped: bool


class MergeTimings:
    """A thread-safe append-only log of :class:`MergeTiming` records.

    Owned by a :class:`~repro.streaming.parallel.MergeExecutor`; the scaling
    benchmark (and any operator tooling) reads :meth:`summary` to see how
    many builds ran, how much build time accumulated, and how many builds
    overlapped another one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timings: List[MergeTiming] = []

    def record(self, timing: MergeTiming) -> None:
        """Append one completed build's timing."""
        with self._lock:
            self._timings.append(timing)

    @property
    def timings(self) -> Tuple[MergeTiming, ...]:
        """Every recorded timing, in completion order."""
        with self._lock:
            return tuple(self._timings)

    def __len__(self) -> int:
        with self._lock:
            return len(self._timings)

    def summary(self) -> Dict[str, float]:
        """Aggregate view: build count, total/max build seconds, overlap count.

        ``overlapped_builds`` is the number of builds that shared their
        executor with at least one concurrent build — 0 on the inline
        executor by construction, and the figure a scaling curve should see
        rise with the worker count.
        """
        with self._lock:
            timings = list(self._timings)
        total = sum(t.build_seconds for t in timings)
        return {
            "builds": float(len(timings)),
            "total_build_seconds": total,
            "max_build_seconds": max((t.build_seconds for t in timings), default=0.0),
            "mean_build_seconds": total / len(timings) if timings else 0.0,
            "overlapped_builds": float(sum(1 for t in timings if t.overlapped)),
        }


@dataclass(slots=True)
class Counters:
    """Named monotonically increasing counters with atomic increments.

    A minimal stand-in for a metrics registry: services and executors bump
    counters by name (``counters.add("merge.builds")``), tests and benchmarks
    read them back as a plain dict.  Unknown names start at zero.
    """

    _values: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def add(self, name: str, amount: int = 1) -> int:
        """Increment ``name`` by ``amount`` and return the new value."""
        with self._lock:
            value = self._values.get(name, 0) + amount
            self._values[name] = value
            return value

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        with self._lock:
            return self._values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._values)
