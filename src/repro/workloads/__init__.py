"""Canned dataset specifications and query workload generators."""

from __future__ import annotations

from .datasets import DATASETS, DatasetSpec, dataset_names, make_dataset
from .queries import QueryWorkload, fixed_length_queries, random_queries

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "make_dataset",
    "QueryWorkload",
    "random_queries",
    "fixed_length_queries",
]
