"""Canned dataset specifications mirroring the paper's data collection.

The paper evaluates on three RWP datasets (10k/20k/40k individuals, 100 km²,
Bluetooth range ``dT`` = 25 m), three VN datasets (1k/2k/4k vehicles on the
San Francisco road network, DSRC range ``dT`` = 300 m), and one real vehicle
dataset (``VN_R``, Beijing taxis).  At paper scale the raw files are hundreds
of gigabytes (Table 2); this module exposes the same *families* at laptop
scale, with a scale knob for users who want to grow them.

Every spec is deterministic (fixed seed) so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.config import ContactConfig, ReachGridConfig
from ..core.errors import DatasetError
from ..generators import (
    RandomWaypointGenerator,
    RoadNetworkGenerator,
    SparseGpsTraceGenerator,
)
from ..trajectory.model import TrajectoryDataset

__all__ = ["DatasetSpec", "DATASETS", "make_dataset", "dataset_names"]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A named, reproducible dataset configuration.

    Attributes
    ----------
    name:
        Identifier used by the CLI and the benchmarks (e.g. ``"rwp-small"``).
    family:
        ``"rwp"``, ``"vn"``, or ``"vnr"`` — mirrors the paper's dataset groups.
    num_objects / horizon:
        Object count and number of time instances.
    environment_size:
        Extent of the environment ``E`` in metres.
    contact_threshold:
        The contact distance ``dT`` (25 m for RWP, 300 m for VN, per the paper).
    grid_config:
        The ReachGrid resolutions the paper found optimal for the family,
        rescaled to the smaller environment.
    seed:
        Seed for the deterministic generator.
    """

    name: str
    family: str
    num_objects: int
    horizon: int
    environment_size: Tuple[float, float]
    contact_threshold: float
    grid_config: ReachGridConfig
    seed: int = 0

    @property
    def contact_config(self) -> ContactConfig:
        """The :class:`ContactConfig` for this dataset."""
        return ContactConfig(distance_threshold=self.contact_threshold)

    def generate(self) -> TrajectoryDataset:
        """Generate the trajectory dataset for this spec."""
        if self.family == "rwp":
            generator = RandomWaypointGenerator(
                num_objects=self.num_objects,
                horizon=self.horizon,
                environment_size=self.environment_size,
                seed=self.seed,
            )
        elif self.family == "vn":
            generator = RoadNetworkGenerator(
                num_objects=self.num_objects,
                horizon=self.horizon,
                environment_size=self.environment_size,
                seed=self.seed,
            )
        elif self.family == "vnr":
            generator = SparseGpsTraceGenerator(
                num_objects=self.num_objects,
                horizon=self.horizon,
                environment_size=self.environment_size,
                seed=self.seed,
            )
        else:
            raise DatasetError(f"unknown dataset family {self.family!r}")
        dataset = generator.generate()
        return TrajectoryDataset(
            list(dataset),
            environment_size=self.environment_size,
            name=self.name,
        )


def _rwp_grid() -> ReachGridConfig:
    # The paper's optimum for RWP is RS=1024 m on a 10 km x 10 km environment
    # and RT=20; the optimum measured on the scaled datasets (Figure 8 driver)
    # is RS=400 m / RT=20, i.e. a handful of cells per axis as in the paper.
    return ReachGridConfig(temporal_resolution=20, spatial_resolution=400.0)


def _vn_grid() -> ReachGridConfig:
    # The paper's optimum for VN is a much coarser spatial grid (RS=17 km on a
    # ~17 km x 17 km area, i.e. a handful of cells per axis).
    return ReachGridConfig(temporal_resolution=20, spatial_resolution=4000.0)


#: The scaled-down counterparts of the paper's data collection (Table 2).
#: Object densities follow the paper (RWP: 100-400 individuals per km2 with a
#: 25 m Bluetooth range; VN: a few vehicles per km2 confined to a road network
#: with a 300 m DSRC range), so contact dynamics and reachability rates are
#: comparable even though the absolute counts are laptop-scale.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        # Random-waypoint "individuals" family (paper: RWP10k/20k/40k).
        DatasetSpec(
            name="rwp-small",
            family="rwp",
            num_objects=250,
            horizon=600,
            environment_size=(1_600.0, 1_600.0),
            contact_threshold=25.0,
            grid_config=_rwp_grid(),
            seed=11,
        ),
        DatasetSpec(
            name="rwp-medium",
            family="rwp",
            num_objects=400,
            horizon=600,
            environment_size=(1_600.0, 1_600.0),
            contact_threshold=25.0,
            grid_config=_rwp_grid(),
            seed=12,
        ),
        DatasetSpec(
            name="rwp-large",
            family="rwp",
            num_objects=600,
            horizon=600,
            environment_size=(1_600.0, 1_600.0),
            contact_threshold=25.0,
            grid_config=_rwp_grid(),
            seed=13,
        ),
        # Road-network "vehicles" family (paper: VN1k/2k/4k).
        DatasetSpec(
            name="vn-small",
            family="vn",
            num_objects=80,
            horizon=600,
            environment_size=(8_000.0, 8_000.0),
            contact_threshold=300.0,
            grid_config=_vn_grid(),
            seed=21,
        ),
        DatasetSpec(
            name="vn-medium",
            family="vn",
            num_objects=120,
            horizon=600,
            environment_size=(8_000.0, 8_000.0),
            contact_threshold=300.0,
            grid_config=_vn_grid(),
            seed=22,
        ),
        DatasetSpec(
            name="vn-large",
            family="vn",
            num_objects=200,
            horizon=600,
            environment_size=(8_000.0, 8_000.0),
            contact_threshold=300.0,
            grid_config=_vn_grid(),
            seed=23,
        ),
        # Sparse-GPS "real" vehicle family (paper: VN_R, Beijing taxis).
        DatasetSpec(
            name="vnr",
            family="vnr",
            num_objects=60,
            horizon=600,
            environment_size=(12_000.0, 12_000.0),
            contact_threshold=300.0,
            grid_config=_vn_grid(),
            seed=31,
        ),
        # Tiny variants used by the test suite and the quickstart example.
        DatasetSpec(
            name="rwp-tiny",
            family="rwp",
            num_objects=40,
            horizon=200,
            environment_size=(700.0, 700.0),
            contact_threshold=25.0,
            grid_config=ReachGridConfig(temporal_resolution=10, spatial_resolution=100.0),
            seed=41,
        ),
        DatasetSpec(
            name="vn-tiny",
            family="vn",
            num_objects=25,
            horizon=200,
            environment_size=(6_000.0, 6_000.0),
            contact_threshold=300.0,
            grid_config=ReachGridConfig(temporal_resolution=10, spatial_resolution=3000.0),
            seed=42,
        ),
    )
}


def dataset_names() -> Tuple[str, ...]:
    """The names of every canned dataset spec."""
    return tuple(DATASETS)


def make_dataset(name: str) -> TrajectoryDataset:
    """Generate the trajectory dataset for a canned spec by name."""
    try:
        spec = DATASETS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from exc
    return spec.generate()
