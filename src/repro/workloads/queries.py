"""Query workload generation.

The paper evaluates each setting with 400 random queries whose sources and
destinations are drawn uniformly and whose interval length is uniform in
[150, 350] (Section 6), plus fixed-length workloads of 100/300/500 instants
for the ReachGrid-vs-ReachGraph comparison (Figure 14).  This module generates
those workloads deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.errors import DatasetError
from ..core.types import ReachabilityQuery, TimeInterval
from ..trajectory.model import TrajectoryDataset

__all__ = ["QueryWorkload", "random_queries", "fixed_length_queries"]


@dataclass(frozen=True, slots=True)
class QueryWorkload:
    """A named batch of reachability queries."""

    name: str
    queries: Tuple[ReachabilityQuery, ...]

    def __iter__(self) -> Iterator[ReachabilityQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def _clamp_length_range(
    horizon: TimeInterval, length_range: Tuple[int, int]
) -> Tuple[int, int]:
    lo, hi = length_range
    if lo <= 0 or hi < lo:
        raise DatasetError("query length range must be positive and ordered")
    hi = min(hi, horizon.length)
    lo = min(lo, hi)
    return lo, hi


def random_queries(
    dataset: TrajectoryDataset,
    count: int = 400,
    length_range: Tuple[int, int] = (150, 350),
    seed: int = 0,
    name: Optional[str] = None,
) -> QueryWorkload:
    """The paper's default workload: random endpoints, random interval length."""
    if count <= 0:
        raise DatasetError("query count must be positive")
    rng = random.Random(seed)
    horizon = dataset.horizon
    lo, hi = _clamp_length_range(horizon, length_range)
    objects = dataset.object_ids
    if len(objects) < 2:
        raise DatasetError("need at least two objects to generate queries")

    queries: List[ReachabilityQuery] = []
    for _ in range(count):
        source, destination = rng.sample(objects, 2)
        length = rng.randint(lo, hi)
        start = rng.randint(horizon.start, horizon.end - length + 1)
        queries.append(
            ReachabilityQuery(
                source, destination, TimeInterval(start, start + length - 1)
            )
        )
    return QueryWorkload(
        name=name or f"{dataset.name}-random-{count}",
        queries=tuple(queries),
    )


def fixed_length_queries(
    dataset: TrajectoryDataset,
    length: int,
    count: int = 100,
    seed: int = 0,
    name: Optional[str] = None,
) -> QueryWorkload:
    """Workload with a fixed query-interval length (Figure 14/15 sweeps)."""
    return random_queries(
        dataset,
        count=count,
        length_range=(length, length),
        seed=seed,
        name=name or f"{dataset.name}-len{length}-{count}",
    )
