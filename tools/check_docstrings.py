#!/usr/bin/env python3
"""Docstring-coverage gate for the public streaming/engine API.

The repo has no third-party docstring tooling (the environment is
stdlib-only by design), so this is the whole checker: walk the gated
modules' ASTs and require a docstring on every module, every public class,
and every public function/method.  "Public" means the name does not start
with an underscore and the object is not nested inside a function (local
helpers are implementation detail).

Usage::

    python tools/check_docstrings.py            # gate the default module set
    python tools/check_docstrings.py src/x.py   # gate specific files

Exit code 0 when every public object is documented, 1 otherwise (listing
each offender as ``path:line: kind name``) — CI runs this in the lint job.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The gated module set: the streaming subsystem (including the parallel
#: executors), the engine facade, the observability hooks, and the fault
#: registry whose point names double as recovery documentation.
DEFAULT_TARGETS = (
    "src/repro/streaming",
    "src/repro/core/engine.py",
    "src/repro/core/config.py",
    "src/repro/obs",
    "src/repro/testing",
)


def iter_python_files(target: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``target`` (or ``target`` itself)."""
    if target.is_dir():
        yield from sorted(target.rglob("*.py"))
    else:
        yield target


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def missing_docstrings(path: Path) -> List[Tuple[int, str, str]]:
    """``(line, kind, qualified name)`` for every undocumented public object."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing: List[Tuple[int, str, str]] = []
    if ast.get_docstring(tree) is None:
        missing.append((1, "module", path.stem))

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    if ast.get_docstring(child) is None:
                        missing.append((child.lineno, "class", prefix + child.name))
                    visit(child, prefix + child.name + ".")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Property setters/deleters re-use the getter's name; the
                # getter carries the documentation.
                decorators = {
                    ast.unparse(d).split("(")[0] for d in child.decorator_list
                }
                is_setter = any(d.endswith((".setter", ".deleter")) for d in decorators)
                if (
                    _is_public(child.name)
                    and not is_setter
                    and ast.get_docstring(child) is None
                ):
                    kind = "async def" if isinstance(child, ast.AsyncFunctionDef) else "def"
                    missing.append((child.lineno, kind, prefix + child.name))
                # Deliberately no recursion: nested defs are local helpers.

    visit(tree, "")
    return missing


def main(argv: List[str]) -> int:
    """Gate the targets; print offenders and coverage, return the exit code."""
    targets = [Path(a) for a in argv] or [REPO_ROOT / t for t in DEFAULT_TARGETS]
    offenders: List[str] = []
    files = 0
    for target in targets:
        if not target.exists():
            print(f"error: no such target {target}", file=sys.stderr)
            return 2
        for path in iter_python_files(target):
            files += 1
            for line, kind, name in missing_docstrings(path):
                rel = path.relative_to(REPO_ROOT) if path.is_absolute() else path
                offenders.append(f"{rel}:{line}: {kind} {name}")
    if offenders:
        print(f"{len(offenders)} public object(s) missing docstrings:")
        print("\n".join(offenders))
        return 1
    print(f"docstring coverage: 100% of public objects across {files} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
