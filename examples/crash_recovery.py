"""Crash recovery: kill a streaming service mid-flush and get everything back.

Run with::

    python examples/crash_recovery.py

The example arms one of the named fault points compiled into the service's
flush protocol (``repro.testing.faults``), so the flush dies *between* making
its dependents durable and committing the manifest — exactly where a real
``kill -9`` could land.  ``simulate_kill`` then drops every buffered write
the way the kernel drops a dead process's page cache.  Recovery happens
twice:

* ``SnapshotQueryService.open`` restores the **committed** prefix read-only —
  the manifest is the commit point, so the reopened watermark is the last
  *completed* flush, and every answer matches the batch reference over that
  prefix;
* ``StreamingReachabilityService.open`` replays the ingest journal past the
  manifest and **resumes ingesting** — the batches that were never flushed at
  all are re-fed, and the resumed service reaches the same final state the
  crashed one was heading for.
"""

from __future__ import annotations

import tempfile

from repro import ReachabilityEngine, StreamingConfig
from repro.core import StorageConfig
from repro.streaming import (
    SnapshotQueryService,
    StreamingReachabilityService,
    replay,
)
from repro.testing import faults
from repro.testing.faults import SimulatedCrash, simulate_kill
from repro.workloads import random_queries


def main() -> None:
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset

    with tempfile.TemporaryDirectory(prefix="repro-crash-recovery-") as storage_dir:
        service = engine.streaming(
            streaming_config=StreamingConfig(
                merge_policy="delta-size", max_delta_contacts=64
            ),
            storage_backend="file",
            storage_dir=storage_dir,
        )
        batches = list(replay(dataset, batch_ticks=20).batches())

        # 1. Ingest a prefix and flush it — this is the durable point.
        for batch in batches[: len(batches) // 2]:
            service.ingest(batch)
        service.flush()
        committed = service.watermark
        print(f"flushed through tick {committed} (the committed prefix)")

        # 2. Keep ingesting, then die inside the next flush: the fault point
        #    sits after the WAL/extents are durable but before the manifest
        #    commits, and simulate_kill drops everything still buffered.
        for batch in batches[len(batches) // 2 :]:
            service.ingest(batch)
        faults.arm("flush-post-ingestor")
        try:
            service.flush()
        except SimulatedCrash as crash:
            print(f"simulated kill -9 at fault point {crash.point!r}")
        simulate_kill(service.overlay.storage, service.ingestor.storage)

        # 3. Read-only recovery: only the committed manifest is served.
        config = StorageConfig(backend="file", storage_dir=storage_dir)
        readonly = SnapshotQueryService.open(config, name=service.name)
        print(f"read-only reopen at watermark {readonly.watermark} "
              f"(the last completed flush)")
        workload = list(random_queries(dataset, count=20, seed=7))
        answered = sum(1 for query in workload if readonly.query(query) is not None)
        print(f"answered {answered} queries over the committed prefix")
        readonly.close()

        # 4. Full recovery: the journaled WAL tail past the manifest comes
        #    back too, and ingestion resumes from the recovered watermark.
        resumed = StreamingReachabilityService.open(config, name=service.name)
        print(f"resumed ingesting at watermark {resumed.watermark} "
              f"(WAL tail replayed past the manifest)")
        for batch in batches:
            if batch.watermark > resumed.watermark:
                resumed.ingest(batch)
        resumed.merge()
        print(f"caught up to tick {resumed.watermark} "
              f"({resumed.stats.events} total events survived the crash)")
        resumed.close()


if __name__ == "__main__":
    main()
