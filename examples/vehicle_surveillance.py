"""Vehicle surveillance: who has a watch-listed vehicle been in contact with?

The paper's second motivating scenario (Section 1): law-enforcement agencies
monitor a watch list ``O`` and need everyone who has potentially been in
contact with any watched vehicle — reachability *to and from* the watch list
over a DSRC-range contact network of vehicles moving on a road network.

The example also demonstrates the index trade-off the paper studies in
Figure 14: for the network-constrained vehicle data, ReachGraph comfortably
beats ReachGrid because the vehicles cluster on a small portion of the
environment, which defeats the spatial grid's pruning.

Run with::

    python examples/vehicle_surveillance.py
"""

from __future__ import annotations

from repro import (
    ContactConfig,
    ReachabilityQuery,
    ReachGraphConfig,
    ReachGridConfig,
    RoadNetworkGenerator,
    TimeInterval,
    build_contact_network,
)
from repro.reachgraph import ReachGraphIndex, ReachGraphQueryProcessor
from repro.reachgrid import ReachGridIndex, ReachGridQueryProcessor
from repro.workloads import fixed_length_queries

#: DSRC effective communication range between vehicles (m), per the paper.
DSRC_RANGE_M = 300.0


def main() -> None:
    dataset = RoadNetworkGenerator(
        num_objects=60,
        horizon=400,
        environment_size=(8_000.0, 8_000.0),
        seed=99,
    ).generate()
    network = build_contact_network(dataset, DSRC_RANGE_M)
    contact_config = ContactConfig(distance_threshold=DSRC_RANGE_M)
    print(f"fleet: {dataset.num_objects} vehicles, {network.num_contacts} contacts")

    reachgraph = ReachGraphIndex(
        dataset, ReachGraphConfig(), contact_config, contact_network=network
    ).build()
    graph_queries = ReachGraphQueryProcessor(reachgraph)
    reachgrid = ReachGridIndex(
        dataset,
        ReachGridConfig(temporal_resolution=20, spatial_resolution=4_000.0),
        contact_config,
    ).build()
    grid_queries = ReachGridQueryProcessor(reachgrid)

    # --- 1. watch-list sweep -------------------------------------------------
    watch_list = [7, 21]
    window = TimeInterval(50, 350)
    in_contact_with_watchlist = set()
    for watched in watch_list:
        for candidate in dataset.object_ids:
            if candidate in watch_list:
                continue
            forward = graph_queries.evaluate(ReachabilityQuery(watched, candidate, window))
            backward = graph_queries.evaluate(ReachabilityQuery(candidate, watched, window))
            if forward.reachable or backward.reachable:
                in_contact_with_watchlist.add(candidate)
    print(
        f"{len(in_contact_with_watchlist)} of {dataset.num_objects - len(watch_list)} "
        f"vehicles were reachable to/from the watch list during {window}"
    )

    # --- 2. ReachGrid vs ReachGraph on the same workload ----------------------
    print()
    print("index comparison on this vehicle dataset (mean normalized IO per query):")
    for length in (100, 300):
        workload = fixed_length_queries(dataset, length=length, count=15, seed=5)
        grid_io = sum(grid_queries.evaluate(q).io for q in workload) / len(workload)
        graph_io = sum(graph_queries.evaluate(q).io for q in workload) / len(workload)
        print(
            f"  query length {length:3d}: ReachGrid {grid_io:8.2f}   "
            f"ReachGraph {graph_io:8.2f}"
        )
    print()
    print("ReachGraph wins on network-constrained vehicle data because the "
          "spatial grid cannot exploit locality when every vehicle shares the "
          "same few road cells (Section 6.3 of the paper).")


if __name__ == "__main__":
    main()
