"""True multi-core execution: process-built merges and a query worker fleet.

Run with::

    python examples/parallel_execution.py

The example exercises both halves of the parallel execution story on one
sharded, disk-backed service:

* **Write side** — the service is configured with
  ``merge_executor="process"``: when merges fire, the coordinator captures a
  frozen, picklable prefix per shard, ships the pure build phase to worker
  *processes*, and adopts the results back on the owning thread.  The
  executor's timing log shows builds of different shards overlapping.
* **Read side** — a :class:`~repro.streaming.parallel.ParallelQueryService`
  attaches to the live service: worker processes each reopen the flushed
  state read-only and answer queries concurrently.  When a new merge is
  adopted, the fleet notices the merge counter move, flushes, and bumps the
  snapshot generation — every worker recycles its snapshot on its next task,
  with no process restarted.

Answers are checked two ways: mid-stream the fleet must agree bit-for-bit
with the live service it mirrors, and after the full drain both must agree
with the batch reference evaluator.
"""

from __future__ import annotations

import tempfile

from repro import ReachabilityEngine, StreamingConfig
from repro.baselines.reference import evaluate_reachability
from repro.streaming import ParallelQueryService, replay
from repro.workloads import random_queries


def main() -> None:
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset
    workload = list(random_queries(dataset, count=12, seed=5))

    with tempfile.TemporaryDirectory(prefix="repro-parallel-") as storage_dir:
        # 1. Two shards, process-pool merge builds, disk-backed so the read
        #    fleet has a committed state to reopen.
        service = engine.streaming(
            streaming_config=StreamingConfig(
                merge_policy="delta-size", max_delta_contacts=24
            ),
            shards=2,
            storage_backend="file",
            storage_dir=storage_dir,
            merge_executor="process",
            merge_workers=2,
        )
        print(
            f"dataset: {dataset.name} — {dataset.num_objects} objects, "
            f"{dataset.num_instants} time instances; {service.num_shards} shards, "
            f"merge executor {service.merge_executor.kind!r}"
        )

        batches = list(replay(dataset, batch_ticks=30).batches())
        try:
            # 2. Ingest half the stream; merges fire through the process pool.
            for batch in batches[: len(batches) // 2]:
                service.ingest(batch)
            service.merge()

            # 3. Attach the read fleet and answer the workload on worker
            #    processes; mid-stream every answer must match the live
            #    service exactly.
            with ParallelQueryService.for_service(service, workers=2) as fleet:
                answers = fleet.query_many(workload)
                live = [service.query(query) for query in workload]
                assert [a.reachable for a in answers] == [a.reachable for a in live]
                print(
                    f"mid-stream: generation {fleet.generation}, "
                    f"watermark {fleet.watermark}, "
                    f"{len(answers)} fleet answers match the live service"
                )

                # 4. Drain the rest; the adopted merges invalidate the fleet
                #    automatically (generation bump, workers recycle).
                generation = fleet.generation
                for batch in batches[len(batches) // 2 :]:
                    service.ingest(batch)
                service.merge()
                answers = fleet.query_many(workload)
                assert fleet.generation > generation
                print(
                    f"after drain: generation {fleet.generation} "
                    f"({fleet.num_refreshes} refresh), watermark {fleet.watermark}"
                )

                # 5. Final answers agree with the batch reference evaluator.
                for query, answer in zip(workload, answers):
                    expected = evaluate_reachability(engine.contact_network, query)
                    assert answer.reachable == expected.reachable
                print(f"all {len(workload)} answers match the batch reference")

                # 6. The executor's own evidence: builds of different shards
                #    overlapped inside the shared process pool.
                summary = service.merge_executor.timings.summary()
                print(
                    f"merge builds: {summary['builds']:.0f} total, "
                    f"{summary['overlapped_builds']:.0f} overlapped, "
                    f"mean build {summary['mean_build_seconds'] * 1000:.1f} ms"
                )
        finally:
            service.close()


if __name__ == "__main__":
    main()
