"""Quickstart: build both indexes on a small dataset and run a few queries.

Run with::

    python examples/quickstart.py

The example generates a small random-waypoint population (the paper's RWP
family at laptop scale), builds the ReachGrid and ReachGraph indexes, and
evaluates a handful of reachability queries with every method, printing the
verdicts and the normalized IO each method paid.
"""

from __future__ import annotations

from repro import ReachabilityEngine
from repro.workloads import random_queries


def main() -> None:
    # 1. Pick one of the canned dataset specs ("rwp-tiny" keeps this instant).
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset
    print(f"dataset: {dataset.name} — {dataset.num_objects} objects, "
          f"{dataset.num_instants} time instances")

    # 2. Build the two indexes of the paper plus the SPJ baseline's raw store.
    engine.build_reachgrid()
    engine.build_reachgraph()
    engine.build_trajectory_store()
    print(f"contact network: {engine.contact_network.num_contacts} contacts")
    print(f"ReachGrid: {engine.reachgrid.num_cells} cells on "
          f"{engine.reachgrid.num_blocks} blocks")
    print(f"ReachGraph: {engine.reachgraph.num_vertices} vertices in "
          f"{engine.reachgraph.num_partitions} partitions")

    # 3. Evaluate a workload with every method and compare verdicts and IO.
    workload = random_queries(dataset, count=5, length_range=(50, 150), seed=3)
    methods = ("reachgrid", "reachgraph", "spj", "reference")
    header = f"{'query':<32}" + "".join(f"{method:>14}" for method in methods)
    print()
    print(header)
    print("-" * len(header))
    for query in workload:
        cells = [f"{query}"[:31].ljust(32)]
        for method in methods:
            result = engine.evaluate(query, method)
            verdict = "yes" if result.reachable else "no"
            cells.append(f"{verdict:>5} ({result.io:6.1f})")
        print("".join(cells))
    print()
    print("columns show 'reachable (normalized IO)' per method; the reference "
          "method is the in-memory ground truth and performs no IO.")


if __name__ == "__main__":
    main()
