"""Sharded streaming ingestion: N ingestors, per-shard watermarks, one truth.

Run with::

    python examples/sharded_ingest.py

The example partitions a replayed random-waypoint stream across four
ingestion shards with the spatial router, lets the shards *skew* (batches are
delivered shard by shard in a scrambled order), and shows how the global
low-watermark — the minimum per-shard watermark — trails the fastest shard
while queries stay answerable over the prefix every shard has completed.  At
the end it verifies the sharded answers equal the batch reference evaluator.
"""

from __future__ import annotations

import random

from repro import ReachabilityEngine, StreamingConfig
from repro.baselines.reference import evaluate_reachability
from repro.core import ReachGridConfig
from repro.streaming import DatasetReplaySource
from repro.workloads import random_queries


def main() -> None:
    # 1. An engine provides the dataset; shards > 1 selects the sharded service.
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset
    service = engine.streaming(
        streaming_config=StreamingConfig(merge_policy="delta-size", max_delta_contacts=24),
        # A spatial resolution well below the 700 m environment keeps the
        # spatial router meaningful: objects starting in different cells
        # spread across shards, and contacts between objects pinned to
        # different shards exercise the coordinator's cross-shard join.
        grid_config=ReachGridConfig(spatial_resolution=100.0),
        shards=4,
        router="spatial",
    )
    print(f"dataset: {dataset.name} — {dataset.num_objects} objects, "
          f"{dataset.num_instants} time instances; "
          f"{service.num_shards} shards, {service.router.name} router")

    # 2. Route every batch, then deliver per-shard sub-batches out of lockstep.
    queues = {shard: [] for shard in range(service.num_shards)}
    for batch in DatasetReplaySource(dataset, batch_ticks=25).batches():
        for shard, sub in enumerate(service.route_batch(batch)):
            queues[shard].append(sub)
    rng = random.Random(7)
    position = {shard: 0 for shard in queues}
    while any(position[s] < len(queues[s]) for s in queues):
        shard = rng.choice([s for s in queues if position[s] < len(queues[s])])
        service.ingest_shard(shard, queues[shard][position[shard]])
        position[shard] += 1
        marks = ", ".join(f"{w if w is not None else '-':>4}" for w in service.watermarks)
        low = service.low_watermark
        print(f"shard {shard} advanced  watermarks=[{marks}]  "
              f"low={'-' if low is None else low:>4}  merges={service.num_merges}")

    # 3. Fully drained, the union of shard overlays equals the batch truth.
    mismatches = 0
    for query in random_queries(dataset, count=30, seed=1):
        expected = evaluate_reachability(engine.contact_network, query)
        if service.query(query).reachable != expected.reachable:
            mismatches += 1
    stats = service.stats
    print(f"\ningested {stats.events} events "
          f"(per shard: {list(stats.shard_events)}) at "
          f"{stats.events_per_second:,.0f} events/sec, "
          f"{stats.merges} merges, {stats.cross_shard_contacts} cross-shard "
          f"contacts, {mismatches} mismatches vs reference")


if __name__ == "__main__":
    main()
