"""Epidemic contact tracing: who could a set of carriers have infected?

This is the paper's motivating public-health scenario (Section 1): a set of
individuals ``O`` is known to carry a contagious virus, and the health agency
needs everyone who could have been directly or indirectly contaminated within
a time window — i.e. the set of individuals *reachable from* any carrier
through the evolving contact network.

The example builds a random-waypoint population, picks a few index cases, and
answers the batch of reachability queries two ways:

* with the ReachGraph index (one BM-BFS query per candidate), and
* with the in-memory reference evaluator (ground truth),

then prints the infection cohort per generation-time window and the IO the
index paid.

Run with::

    python examples/epidemic_tracing.py
"""

from __future__ import annotations

from repro import (
    ContactConfig,
    ReachabilityQuery,
    ReachGraphConfig,
    RandomWaypointGenerator,
    TimeInterval,
    build_contact_network,
)
from repro.baselines import reachable_set
from repro.reachgraph import ReachGraphIndex, ReachGraphQueryProcessor

#: Bluetooth-style proximity threshold for person-to-person transmission (m).
CONTACT_RANGE_M = 25.0


def main() -> None:
    # A small town: 120 individuals walking for 400 ticks (~40 minutes at the
    # paper's 6-second sampling period).
    dataset = RandomWaypointGenerator(
        num_objects=120,
        horizon=400,
        environment_size=(1_000.0, 1_000.0),
        seed=2024,
    ).generate()
    network = build_contact_network(dataset, CONTACT_RANGE_M)
    print(f"population: {dataset.num_objects} individuals, "
          f"{network.num_contacts} contacts over {dataset.num_instants} ticks")

    index = ReachGraphIndex(
        dataset,
        ReachGraphConfig(),
        ContactConfig(distance_threshold=CONTACT_RANGE_M),
        contact_network=network,
    ).build()
    processor = ReachGraphQueryProcessor(index)

    index_cases = [3, 57, 101]
    windows = [TimeInterval(0, 100), TimeInterval(0, 250), TimeInterval(0, 399)]

    for window in windows:
        # Batch of reachability queries: every individual against every carrier.
        exposed = set(index_cases)
        total_io = 0.0
        for carrier in index_cases:
            for candidate in dataset.object_ids:
                if candidate in exposed:
                    continue
                result = processor.evaluate(
                    ReachabilityQuery(carrier, candidate, window)
                )
                total_io += result.io
                if result.reachable:
                    exposed.add(candidate)
        # Ground truth via the reference evaluator.
        truth = set(index_cases)
        for carrier in index_cases:
            truth |= reachable_set(network, carrier, window)
        assert exposed == truth, "index disagrees with ground truth"
        share = 100.0 * len(exposed) / dataset.num_objects
        print(
            f"window {str(window):>10}: {len(exposed):3d} individuals exposed "
            f"({share:5.1f}% of the population), "
            f"{total_io:8.1f} normalized IOs for the query batch"
        )

    print()
    print("The exposed cohort grows with the tracing window — exactly the "
          "propagation behaviour reachability queries are designed to audit.")


if __name__ == "__main__":
    main()
