"""Streaming ingestion: keep reachability queryable while samples arrive.

Run with::

    python examples/streaming_ingest.py

The example replays a small random-waypoint dataset as a timestamped stream,
ingests it batch by batch through the :class:`StreamingReachabilityService`,
and issues the same reachability query at several watermarks — showing how
the answer can flip from unreachable to reachable as the contact path's edges
arrive.  At the end it verifies the drained stream agrees with the batch
reference evaluator.
"""

from __future__ import annotations

from repro import ReachabilityEngine, ReachabilityQuery, StreamingConfig
from repro.baselines.reference import evaluate_reachability
from repro.streaming import replay
from repro.workloads import random_queries


def main() -> None:
    # 1. An engine provides the dataset and the matching streaming service.
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset
    service = engine.streaming(
        streaming_config=StreamingConfig(merge_policy="delta-size", max_delta_contacts=64)
    )
    print(f"dataset: {dataset.name} — {dataset.num_objects} objects, "
          f"{dataset.num_instants} time instances")

    # 2. Ingest the replayed stream, probing one query as data arrives.
    probe = ReachabilityQuery(source=0, destination=7, interval=dataset.horizon)
    for batch in replay(dataset, batch_ticks=20).batches():
        service.ingest(batch)
        result = service.query(probe)
        print(f"watermark={service.watermark:>4}  reachable={bool(result)!s:<5}  "
              f"delta={service.overlay.delta_size:>3} contacts  "
              f"merges={service.num_merges}")

    # 3. After draining, streaming answers equal the batch ground truth.
    mismatches = 0
    for query in random_queries(dataset, count=30, seed=1):
        expected = evaluate_reachability(engine.contact_network, query)
        if service.query(query).reachable != expected.reachable:
            mismatches += 1
    stats = service.stats
    print(f"\ningested {stats.events} events at "
          f"{stats.events_per_second:,.0f} events/sec, "
          f"{stats.merges} merges, {mismatches} mismatches vs reference")


if __name__ == "__main__":
    main()
