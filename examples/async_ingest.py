"""Asyncio serving: backpressured ingest, queries during background merges.

Run with::

    python examples/async_ingest.py

The example feeds a replayed random-waypoint stream into an
:class:`~repro.streaming.async_service.AsyncReachabilityService` — per-shard
ingest loops behind bounded queues — while a pool of query workers hammers
the service concurrently.  Merges fire mid-stream and run as background
tasks, so the workers keep getting answers while snapshots rebuild; each
answer is checked against the batch reference evaluator over the prefix the
low-watermark had made complete when the query was issued.  At the end the
fully drained service is verified against the reference once more.
"""

from __future__ import annotations

import asyncio

from repro import ReachabilityEngine, StreamingConfig
from repro.baselines.reference import evaluate_reachability
from repro.core import ReachGridConfig
from repro.streaming import DatasetReplaySource
from repro.workloads import random_queries

CONCURRENCY = 4


async def main() -> None:
    # 1. async_mode=True selects the asyncio front-end over N shards.
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset
    workload = list(random_queries(dataset, count=20, seed=1))
    service = engine.streaming(
        streaming_config=StreamingConfig(
            merge_policy="delta-size", max_delta_contacts=24, async_queue_depth=2
        ),
        grid_config=ReachGridConfig(spatial_resolution=100.0),
        shards=4,
        async_mode=True,
    )
    print(
        f"dataset: {dataset.name} — {dataset.num_objects} objects, "
        f"{dataset.num_instants} time instances; {service.num_shards} shards, "
        f"queue depth {service.streaming_config.async_queue_depth}"
    )

    answered = 0
    stop = asyncio.Event()

    async def query_worker(worker_id: int) -> None:
        # Workers answer round-robin queries until the stream is drained;
        # answers issued while merges are in flight are still exact.
        nonlocal answered
        index = worker_id
        while not stop.is_set():
            query = workload[index % len(workload)]
            await service.query(query)
            answered += 1
            index += CONCURRENCY
            await asyncio.sleep(0)  # hand the loop back to the ingest tasks

    async with service:
        workers = [
            asyncio.ensure_future(query_worker(worker)) for worker in range(CONCURRENCY)
        ]
        # 2. The producer: awaits each enqueue, so full shard queues slow it
        #    down (backpressure) instead of buffering unboundedly.
        for batch in DatasetReplaySource(dataset, batch_ticks=10).batches():
            await service.ingest(batch)
            low = service.low_watermark
            print(
                f"enqueued through t={batch.watermark:>3}  "
                f"low={'-' if low is None else low:>3}  "
                f"pending={service.pending_batches}  "
                f"merges in flight={service.merges_in_flight}  "
                f"adopted={service.background_merges}"
            )
        stats = await service.drain()
        stop.set()
        await asyncio.gather(*workers)

        # 3. Fully drained, the async answers equal the batch truth.
        mismatches = 0
        for query in workload:
            expected = evaluate_reachability(engine.contact_network, query)
            actual = await service.query(query)
            if actual.reachable != expected.reachable:
                mismatches += 1

    print(
        f"\ningested {stats.sharded.events} events at "
        f"{stats.events_per_second:,.0f} events/sec, "
        f"{stats.background_merges} background merges, "
        f"{answered} queries answered during ingest, "
        f"{mismatches} mismatches vs reference"
    )


if __name__ == "__main__":
    asyncio.run(main())
