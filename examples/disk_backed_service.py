"""Disk-backed streaming: ingest → merge → close → reopen → query.

Run with::

    python examples/disk_backed_service.py

The example runs the streaming service on the real ``file`` backend instead
of the in-memory simulated disk: snapshot contact runs land in an append-only
block file under a real directory, merges append LSM runs instead of
rewriting the snapshot, and ``close()`` makes the queryable state durable
(fsync + manifest).  A :class:`SnapshotQueryService` then reopens the backing
files — as another process would after a restart — and answers the same
queries bit-identically to the service that was closed.
"""

from __future__ import annotations

import tempfile

from repro import ReachabilityEngine, StreamingConfig
from repro.streaming import SnapshotQueryService, replay
from repro.workloads import random_queries


def main() -> None:
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset

    with tempfile.TemporaryDirectory(prefix="repro-disk-backed-") as storage_dir:
        # 1. A file-backed service: same API, real files under storage_dir.
        service = engine.streaming(
            streaming_config=StreamingConfig(
                merge_policy="delta-size", max_delta_contacts=64
            ),
            storage_backend="file",
            storage_dir=storage_dir,
        )
        for batch in replay(dataset, batch_ticks=20).batches():
            service.ingest(batch)
        service.merge()  # freeze the full prefix onto the device
        stats = service.stats
        print(f"ingested {stats.events} events, {stats.merges} merges, "
              f"{stats.snapshot_runs} snapshot run(s), "
              f"{stats.snapshot_records_written} contact records written")

        # 2. Remember a few answers, then close: fsync + durable manifest.
        workload = list(random_queries(dataset, count=20, seed=7))
        before = {query: service.query(query) for query in workload}
        storage_config = service.overlay.storage.config
        print(f"closing; backing files live under {storage_dir}")
        service.close()

        # 3. Reopen from the files alone (no ingestor state survives — only
        #    the queryable snapshot + delta + open-contact manifest).
        reopened = SnapshotQueryService.open(storage_config, name=service.name)
        print(f"reopened at watermark {reopened.watermark}, "
              f"snapshot={reopened.overlay.snapshot_size} contacts")

        mismatches = 0
        total_io = 0.0
        for query in workload:
            result = reopened.query(query)
            total_io += result.io
            expected = before[query]
            # Both sides may answer through the ReachGraph fast path (the
            # reopened service restores the persisted index), and a
            # bidirectional traversal may omit the earliest reach time.  The
            # verdicts must agree exactly, earliest times wherever both sides
            # report one.
            if bool(result.reachable) != bool(expected.reachable) or (
                expected.earliest_time is not None
                and result.earliest_time is not None
                and result.earliest_time != expected.earliest_time
            ):
                mismatches += 1
        reopened.close()
        print(f"re-answered {len(workload)} queries from disk: "
              f"{mismatches} mismatches vs the pre-close answers, "
              f"{total_io / len(workload):.2f} normalized IOs per query")


if __name__ == "__main__":
    main()
