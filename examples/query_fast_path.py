"""The query fast path: interval labels, zone maps, and the partition cache.

Run with::

    python examples/query_fast_path.py

Three pruning layers answer (or shrink) queries before the exact traversal
pays its IO, and each is one-sided — a pruning verdict is provably exact, so
answers never change:

* GRAIL-style **interval labels** over the reduced DAG reject provably
  unreachable pairs in O(1) and prune hopeless branches of the BM-BFS
  frontier; they are patched incrementally as streaming merges extend the
  graph.
* Per-run **zone maps** (min/max contact time plus an object-id Bloom
  filter) let the LSM snapshot store skip whole runs on narrow reads, and
  let the overlay answer unknown-endpoint queries with zero IO.
* A cross-query **partition cache** shares hot ReachGraph partitions across
  queries, invalidated whenever a merge or repack mutates the graph.

The example drains a small stream, runs a negative-heavy workload with the
labels on and off, and verifies every answer against the batch ``reference``
evaluator — exiting non-zero on any disagreement.
"""

from __future__ import annotations

from repro import ReachabilityEngine, StreamingConfig
from repro.baselines.reference import evaluate_reachability
from repro.contacts import build_contact_network
from repro.core import ReachabilityQuery, TimeInterval
from repro.streaming import replay
from repro.workloads import random_queries


def main() -> None:
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset
    service = engine.streaming(
        streaming_config=StreamingConfig(
            merge_policy="delta-size", max_delta_contacts=24
        )
    )
    for batch in replay(dataset, batch_ticks=8).batches():
        service.ingest(batch)
    service.merge()  # freeze the tail so every query runs on the fast path

    objects = dataset.object_ids
    horizon = dataset.horizon
    workload = list(random_queries(dataset, count=15, seed=3))
    # A negative-heavy tail: tight windows plus two unknown endpoints.
    workload += [
        ReachabilityQuery(
            objects[i % len(objects)],
            objects[(i * 7 + 3) % len(objects)],
            TimeInterval(start, start + 1),
        )
        for i, start in enumerate(range(horizon.start, horizon.end - 1, 11))
    ]
    workload.append(ReachabilityQuery(max(objects) + 50, objects[0], horizon))

    network = build_contact_network(
        dataset, engine.contact_config.distance_threshold
    )
    truth = [
        bool(evaluate_reachability(network, query).reachable) for query in workload
    ]

    processor = service.overlay.snapshot_processor
    answers = {}
    for labels_on in (True, False):
        processor.use_labels = labels_on
        service.overlay.partition_cache.invalidate()
        visited = 0
        for query in workload:
            result = service.overlay.evaluate(query)
            answers.setdefault(labels_on, []).append(bool(result.reachable))
            visited += result.visited
        stats = service.stats
        print(
            f"labels {'on ' if labels_on else 'off'}: {visited} vertices visited — "
            f"{stats.label_rejections} label rejections, "
            f"{stats.label_frontier_prunes} frontier prunes, "
            f"{stats.bloom_rejections} bloom rejections, "
            f"partition cache {stats.partition_cache_hits} hits / "
            f"{stats.partition_cache_misses} misses"
        )

    assert answers[True] == truth, "labels-on answers must match the reference"
    assert answers[False] == truth, "labels-off answers must match the reference"
    store = service.overlay.snapshot_store
    store.read_overlapping(TimeInterval(horizon.start, horizon.start + 2))
    print(
        f"zone maps: a one-tick read over {store.num_runs} run(s) skipped "
        f"{store.runs_skipped} run(s) / {store.blocks_skipped} block(s) "
        "without touching the device"
    )
    print(f"all {len(workload)} queries matched the batch reference, twice")
    service.close()


if __name__ == "__main__":
    main()
