"""Incremental ReachGraph maintenance: patch the DAG vs rebuild it per merge.

Run with::

    python examples/incremental_graph_merges.py

Every streaming merge freezes the delta into the snapshot and refreshes the
ReachGraph fast path over the grown prefix.  Before the incremental mode that
refresh *rebuilt* the whole index — reduction, augmentation, partitioning,
every vertex record rewritten — so merge cost grew with the stream instead of
with the delta.  ``graph_mode="incremental"`` (the default) keeps one live
index and patches it: open component vertices at the frontier are extended or
split as new contacts arrive, newly complete augmentation windows add their
long edges, fresh vertices join fresh partitions, and only *dirty* partitions
are rewritten on disk.

The example drains the same stream once per mode and prints the write
ledgers: ``graph_records_written`` (vertex records written over the whole
stream), ``graph_rebuilds`` (full builds — 1 in incremental mode), and
``graph_superseded_blocks`` (on-device garbage the rewrites leave behind).
Both services must answer every query identically — the modes may only
differ in cost, never in answers.
"""

from __future__ import annotations

import time

from repro import ReachabilityEngine, StreamingConfig
from repro.streaming import replay
from repro.workloads import random_queries


def main() -> None:
    engine = ReachabilityEngine.from_dataset_name("rwp-tiny")
    dataset = engine.dataset
    workload = list(random_queries(dataset, count=25, seed=3))

    answers = {}
    for graph_mode in ("incremental", "rebuild"):
        service = engine.streaming(
            streaming_config=StreamingConfig(
                merge_policy="delta-size", max_delta_contacts=24
            ),
            graph_mode=graph_mode,
        )
        started = time.perf_counter()
        for batch in replay(dataset, batch_ticks=8).batches():
            service.ingest(batch)
        service.merge()  # freeze the tail so the graph covers the full prefix
        drain_seconds = time.perf_counter() - started

        stats = service.stats
        answers[graph_mode] = [bool(service.query(q).reachable) for q in workload]
        print(
            f"{graph_mode:>11}: {stats.merges} merges in {drain_seconds:.3f}s — "
            f"{stats.graph_records_written} vertex records written, "
            f"{stats.graph_rebuilds} full build(s), "
            f"{stats.graph_superseded_blocks} superseded partition block(s)"
        )

    assert answers["incremental"] == answers["rebuild"], "modes must agree"
    print(f"both modes answered all {len(workload)} queries identically")


if __name__ == "__main__":
    main()
