"""Setup shim for environments without network access (legacy editable installs)."""
from setuptools import setup

setup()
