"""Benchmark: Figure 9 — ReachGrid construction time vs horizon length."""

from __future__ import annotations

from repro.experiments.figures import figure9_reachgrid_construction

from conftest import run_experiment


def test_figure9_construction_time(benchmark):
    result = run_experiment(
        benchmark,
        figure9_reachgrid_construction,
        dataset_names=("rwp-tiny", "rwp-small"),
        horizon_fractions=(0.5, 1.0),
    )
    # Construction time grows with the horizon for each dataset.
    for name in ("rwp-tiny", "rwp-small"):
        rows = [row for row in result.rows if row["dataset"] == name]
        assert rows[0]["horizon"] < rows[-1]["horizon"]
        assert rows[0]["cells"] <= rows[-1]["cells"]
