"""Benchmark: Table 4 — average long-edge degree per resolution."""

from __future__ import annotations

from repro.experiments.figures import table4_average_degree

from conftest import run_experiment


def test_table4_average_degree(benchmark):
    result = run_experiment(
        benchmark,
        table4_average_degree,
        dataset_names=("rwp-small", "vn-small", "vnr"),
        resolutions=(2, 4, 8, 16, 32),
    )
    # Degree grows with resolution for every dataset (Table 4's trend).
    for name in ("rwp-small", "vn-small", "vnr"):
        degrees = [row["average_degree"] for row in result.rows if row["dataset"] == name]
        assert degrees[0] <= degrees[-1]
