"""Benchmark: Table 1 — analytical complexity comparison."""

from __future__ import annotations

from repro.experiments.figures import table1_complexity

from conftest import run_experiment


def test_table1_complexity(benchmark):
    result = run_experiment(benchmark, table1_complexity)
    assert [row["approach"] for row in result.rows] == ["GRAIL", "ReachGraph", "ReachGrid"]
