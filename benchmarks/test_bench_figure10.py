"""Benchmark: Figure 10 — contact network (DN) size vs horizon length."""

from __future__ import annotations

from repro.experiments.figures import figure10_contact_network_size

from conftest import run_experiment


def test_figure10_contact_network_size(benchmark):
    result = run_experiment(
        benchmark,
        figure10_contact_network_size,
        dataset_names=("rwp-tiny", "rwp-small"),
        horizon_fractions=(0.5, 1.0),
    )
    for name in ("rwp-tiny", "rwp-small"):
        rows = [row for row in result.rows if row["dataset"] == name]
        assert rows[0]["dn_vertices"] <= rows[-1]["dn_vertices"]
        assert rows[0]["dn_edges"] <= rows[-1]["dn_edges"]
