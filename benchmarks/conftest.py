"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through the
drivers in :mod:`repro.experiments.figures`.  The drivers are deterministic
but not cheap (they build indexes), so each benchmark runs exactly one round
via ``benchmark.pedantic`` and the dataset/contact-network cache inside the
figures module is shared across benchmarks of the same session.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_result


def run_experiment(benchmark, driver, **kwargs):
    """Run one experiment driver exactly once under pytest-benchmark."""
    result = benchmark.pedantic(lambda: driver(**kwargs), rounds=1, iterations=1)
    # Echo the reproduced table so `pytest -s` shows the paper-style rows.
    print()
    print(format_result(result))
    return result


@pytest.fixture(scope="session", autouse=True)
def _clear_dataset_cache_at_end():
    yield
    from repro.experiments.figures import clear_cache

    clear_cache()
