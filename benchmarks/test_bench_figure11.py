"""Benchmark: Figure 11 — contact network (DN) construction time."""

from __future__ import annotations

from repro.experiments.figures import figure11_dn_construction_time

from conftest import run_experiment


def test_figure11_dn_construction_time(benchmark):
    result = run_experiment(
        benchmark,
        figure11_dn_construction_time,
        dataset_names=("rwp-small", "vn-small"),
        horizon_fractions=(0.5, 1.0),
    )
    assert all(row["build_seconds"] >= 0 for row in result.rows)
    # Longer horizons never build faster by a large margin (noise tolerance 20%).
    for name in ("rwp-small", "vn-small"):
        rows = [row for row in result.rows if row["dataset"] == name]
        assert rows[-1]["build_seconds"] >= 0.5 * rows[0]["build_seconds"]
