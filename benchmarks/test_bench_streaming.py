"""Benchmark: streaming ingestion vs full-rebuild querying.

Replays a canned dataset through the streaming service and reports ingest
throughput (events/sec) plus per-query IO in the two regimes the delta
overlay creates: queries answered while the delta is live versus queries
answered after a merge folded everything into the frozen ReachGraph.
"""

from __future__ import annotations

from repro.streaming.experiment import stream_replay

from conftest import run_experiment


def test_streaming_ingest_and_query(benchmark):
    result = run_experiment(
        benchmark,
        stream_replay,
        dataset_names=("rwp-small",),
        batch_ticks=8,
        num_queries=12,
    )
    row = result.rows[0]
    assert row["events"] > 0
    assert row["ingest_events_per_sec"] > 0
    assert row["premerge_mean_io"] > 0
    assert row["postmerge_mean_io"] > 0
    # Streaming must agree with the batch reference evaluator in both regimes.
    assert row["premerge_matches"] == "12/12"
    assert row["postmerge_matches"] == "12/12"
