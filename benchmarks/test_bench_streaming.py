"""Benchmark: streaming ingestion vs full-rebuild querying, and shard scaling.

Replays a canned dataset through the streaming service and reports ingest
throughput (events/sec) plus per-query IO in the two regimes the delta
overlay creates: queries answered while the delta is live versus queries
answered after a merge folded everything into the frozen ReachGraph.  The
sharded benchmark drains the same stream through 1/2/4/8 ingestion shards and
reports the scaling curve of events/sec and per-query cost; the async
benchmark replays the same script through the synchronous sharded service and
the asyncio front-end under concurrent query load.

The committed ``BENCH_streaming.json`` pins the expected medians of this
module; CI reruns it with ``--benchmark-json`` and
``benchmarks/check_regression.py`` fails the build on a >30% per-benchmark
median slowdown.
"""

from __future__ import annotations

import os

from repro.streaming.experiment import (
    async_stream_replay,
    disk_backend_replay,
    graph_merge_replay,
    parallel_merge_replay,
    query_latency_replay,
    sharded_stream_replay,
    space_replay,
    stream_replay,
)

from conftest import run_experiment


def test_streaming_ingest_and_query(benchmark):
    result = run_experiment(
        benchmark,
        stream_replay,
        dataset_names=("rwp-small",),
        batch_ticks=8,
        num_queries=12,
    )
    row = result.rows[0]
    assert row["events"] > 0
    assert row["ingest_events_per_sec"] > 0
    assert row["premerge_mean_io"] > 0
    assert row["postmerge_mean_io"] > 0
    # Streaming must agree with the batch reference evaluator in both regimes.
    assert row["premerge_matches"] == "12/12"
    assert row["postmerge_matches"] == "12/12"


def test_sharded_scaling_curve(benchmark):
    result = run_experiment(
        benchmark,
        sharded_stream_replay,
        dataset_names=("rwp-small",),
        shard_counts=(1, 2, 4, 8),
        batch_ticks=8,
        num_queries=12,
    )
    assert [row["shards"] for row in result.rows] == [1, 2, 4, 8]
    events = {row["events"] for row in result.rows}
    assert len(events) == 1, "every shard count must drain the same stream"
    for row in result.rows:
        assert row["ingest_events_per_sec"] > 0
        assert row["mean_query_ms"] > 0
        # Sharded answers must agree with the batch reference evaluator at
        # every shard count (the cross-method equivalence contract).
        assert row["matches"] == "12/12"


def test_async_vs_sync_serving(benchmark):
    result = run_experiment(
        benchmark,
        async_stream_replay,
        dataset_names=("rwp-small",),
        shards=2,
        concurrency=4,
        batch_ticks=8,
        num_queries=12,
        queries_per_batch=3,
    )
    assert [row["mode"] for row in result.rows] == ["sync", "async"]
    by_mode = {row["mode"]: row for row in result.rows}
    for row in result.rows:
        assert row["ingest_events_per_sec"] > 0
        assert row["queries_during_ingest"] > 0
        assert row["wall_seconds"] > 0
        # Both regimes must agree with the batch reference evaluator once
        # drained (the async correctness contract).
        assert row["matches"] == "12/12"
    # Both regimes replay the same batches, so merges fire in both; the async
    # ones ran as background tasks.
    assert by_mode["async"]["merges"] > 0
    assert by_mode["sync"]["merges"] > 0


def test_graph_merge_cost(benchmark):
    """The ``stream-graph`` benchmark: patch the ReachGraph vs rebuild it.

    One long multi-merge stream drained twice — incremental graph maintenance
    against rebuild-per-merge.  Both modes must agree with the batch
    reference; the incremental mode must write strictly fewer graph vertex
    records (the write-amplification claim of the incremental path).
    """
    result = run_experiment(
        benchmark,
        graph_merge_replay,
        dataset_names=("rwp-small",),
        graph_modes=("incremental", "rebuild"),
        batch_ticks=8,
        num_queries=12,
        max_delta_contacts=96,
    )
    assert [row["graph_mode"] for row in result.rows] == ["incremental", "rebuild"]
    by_mode = {row["graph_mode"]: row for row in result.rows}
    for row in result.rows:
        assert row["merges"] > 3, "the workload must force a multi-merge stream"
        assert row["matches"] == "12/12"
    assert by_mode["incremental"]["graph_rebuilds"] == 1
    assert by_mode["rebuild"]["graph_rebuilds"] == by_mode["rebuild"]["merges"]
    # The point of incremental maintenance: strictly fewer records written.
    assert (
        by_mode["incremental"]["graph_records_written"]
        < by_mode["rebuild"]["graph_records_written"]
    ), by_mode
    # Both modes leave reclaimable graph garbage: incremental supersedes
    # partitions it rewrites in place, rebuild retires the whole previous
    # graph version at every merge (its files leave the storage catalog, so
    # the ledger counts them until a device reclaim recycles the blocks).
    assert by_mode["incremental"]["graph_superseded_blocks"] > 0
    assert by_mode["rebuild"]["graph_superseded_blocks"] > 0


def test_storage_backend_comparison(benchmark):
    """The ``stream-disk`` benchmark: sim vs file vs mmap on one stream.

    Every backend drains the identical replayed stream behind the same
    ``StorageSystem`` interface, so the IO columns are directly comparable;
    the persistent rows additionally close, reopen, and re-answer the
    workload from the backing files.
    """
    result = run_experiment(
        benchmark,
        disk_backend_replay,
        dataset_names=("rwp-small",),
        backends=("sim", "file", "mmap"),
        batch_ticks=8,
        num_queries=12,
    )
    assert [row["backend"] for row in result.rows] == ["sim", "file", "mmap"]
    by_backend = {row["backend"]: row for row in result.rows}
    ios = {row["backend"]: row["mean_query_io"] for row in result.rows}
    # Normalized IO is a property of layout + access pattern, not of the
    # device implementation: all three backends must charge identically.
    assert len(set(ios.values())) == 1, ios
    for row in result.rows:
        assert row["ingest_events_per_sec"] > 0
        assert row["matches"] == "12/12"
    assert by_backend["sim"]["reopen_matches"] == "n/a"
    for backend in ("file", "mmap"):
        assert by_backend[backend]["reopen_matches"] == "12/12"


def test_space_reclamation(benchmark):
    """The ``stream-space`` benchmark: GC cost and the live/device bound.

    Drains one multi-merge stream per backend with the full reclamation
    pipeline armed — leveled compaction, frontier repacks, WAL truncation,
    and policy-triggered copy-forward GC — then runs one explicit reclaim.
    The rows must show the space contract: policy GC actually fired during
    the drain, the device footprint converged onto the live block set
    (device_over_live within the 1.5x acceptance bound), the WAL is empty
    after the final flush, and answers still match the batch reference.
    The benchmark median is the cost of the whole drain *including* its GC
    passes, so a reclamation slowdown trips the regression gate.
    """
    result = run_experiment(
        benchmark,
        space_replay,
        dataset_names=("rwp-small",),
        backends=("sim", "file", "mmap"),
        batch_ticks=8,
        num_queries=12,
        gc_trigger_ratio=0.35,
        max_delta_contacts=96,
    )
    assert [row["backend"] for row in result.rows] == ["sim", "file", "mmap"]
    for row in result.rows:
        assert row["merges"] > 3, "the workload must force a multi-merge stream"
        assert row["reclaims"] > 0, "policy GC must fire during the drain"
        assert row["reclaimed_blocks"] > 0
        assert row["live_blocks"] > 0
        assert row["device_blocks"] <= 1.5 * row["live_blocks"], row
        assert row["journal_blocks"] == 0, "flush must truncate the WAL"
        assert row["matches"] == "12/12"
    # The layout is backend-independent, so the post-GC footprint is too.
    assert len({row["device_blocks"] for row in result.rows}) == 1


def test_parallel_merge_scaling(benchmark):
    """The ``stream-parallel`` benchmark: cores vs merge throughput.

    Drains one multi-merge sharded stream per (executor, workers) cell —
    inline as the single-core baseline, then the process pool at 1/2/4
    workers.  Every cell must agree with the batch reference evaluator;
    the pool cells must show overlapped builds (the concurrency witness
    that merges actually left the single inline lane).  The wall-clock
    *speedup* from extra workers is asserted only on multi-core hosts —
    on one core the curve is legitimately flat.
    """
    result = run_experiment(
        benchmark,
        parallel_merge_replay,
        dataset_names=("rwp-small",),
        executors=("inline", "process"),
        worker_counts=(1, 2, 4),
        shards=4,
        batch_ticks=8,
        num_queries=12,
        max_delta_contacts=64,
    )
    assert [(row["executor"], row["workers"]) for row in result.rows] == [
        ("inline", 1),
        ("process", 1),
        ("process", 2),
        ("process", 4),
    ]
    merges = {row["merges"] for row in result.rows}
    assert len(merges) == 1, "every cell must replay the identical merge stream"
    for row in result.rows:
        assert row["matches"] == "12/12"
        assert row["drain_seconds"] > 0
    by_cell = {(row["executor"], row["workers"]): row for row in result.rows}
    assert by_cell[("inline", 1)]["overlapped_builds"] == 0
    for workers in (1, 2, 4):
        assert by_cell[("process", workers)]["overlapped_builds"] > 0, (
            "the coordinator submits all shard builds before adopting any, "
            "so pool builds must overlap"
        )
    if (os.cpu_count() or 1) >= 2:
        # With real spare cores, 4 process workers must beat 1 on wall time
        # (generous 0.95 factor: the builds are small, so we only require
        # the curve to point the right way, not a linear speedup).
        assert (
            by_cell[("process", 4)]["drain_seconds"]
            < by_cell[("process", 1)]["drain_seconds"] / 0.95
        ), by_cell


def test_query_latency(benchmark):
    """The ``stream-query`` benchmark: the query fast path's three layers.

    Runs positive- and negative-heavy mixes with the interval labels on and
    off, each as a cold-cache pass followed by a warm-cache repeat.  The
    acceptance bar of the fast-path issue: on the negative-heavy mix the
    labels must *measurably* beat the traversal-only configuration (fewer
    vertices visited, no more IO), the Bloom/zone-map layer must skip work
    (rejections and the probe's skipped blocks), the partition cache must
    show hits — and no layer may ever change an answer.
    """
    result = run_experiment(
        benchmark,
        query_latency_replay,
        dataset_names=("rwp-small",),
        batch_ticks=8,
        num_queries=24,
        max_delta_contacts=64,
    )
    by_cell = {(row["mix"], row["labels"]): row for row in result.rows}
    assert set(by_cell) == {
        ("positive-heavy", "on"),
        ("positive-heavy", "off"),
        ("negative-heavy", "on"),
        ("negative-heavy", "off"),
    }
    for row in result.rows:
        # The one-sided-filter contract: every cell matches the reference.
        assert row["matches"] == f"{24}/{24}"
        assert row["cold_ms"] > 0 and row["warm_ms"] > 0
    negative_on = by_cell[("negative-heavy", "on")]
    negative_off = by_cell[("negative-heavy", "off")]
    # Label fast path beats traversal-only on the negative-heavy mix: O(1)
    # rejections and frontier pruning must show up as strictly less traversal
    # work and no more IO.
    assert negative_on["label_rejections"] + negative_on["frontier_prunes"] > 0
    assert negative_on["mean_visited"] < negative_off["mean_visited"]
    assert negative_on["mean_io"] <= negative_off["mean_io"]
    assert negative_off["label_rejections"] == 0
    assert negative_off["frontier_prunes"] == 0
    # The Bloom layer answers unknown-endpoint queries regardless of labels.
    assert negative_on["bloom_rejections"] > 0
    assert negative_off["bloom_rejections"] > 0
    # The shared partition cache pays across queries within a pass.
    for row in result.rows:
        assert row["cache_hit_rate"] > 0
    # The zone-map probe must have skipped disjoint runs without IO.
    probe_notes = [note for note in result.notes if "zone-map probe" in note]
    assert probe_notes and "skipped 0 run(s)" not in probe_notes[0]
