"""Benchmark: streaming ingestion vs full-rebuild querying, and shard scaling.

Replays a canned dataset through the streaming service and reports ingest
throughput (events/sec) plus per-query IO in the two regimes the delta
overlay creates: queries answered while the delta is live versus queries
answered after a merge folded everything into the frozen ReachGraph.  The
sharded benchmark drains the same stream through 1/2/4/8 ingestion shards and
reports the scaling curve of events/sec and per-query cost.
"""

from __future__ import annotations

from repro.streaming.experiment import sharded_stream_replay, stream_replay

from conftest import run_experiment


def test_streaming_ingest_and_query(benchmark):
    result = run_experiment(
        benchmark,
        stream_replay,
        dataset_names=("rwp-small",),
        batch_ticks=8,
        num_queries=12,
    )
    row = result.rows[0]
    assert row["events"] > 0
    assert row["ingest_events_per_sec"] > 0
    assert row["premerge_mean_io"] > 0
    assert row["postmerge_mean_io"] > 0
    # Streaming must agree with the batch reference evaluator in both regimes.
    assert row["premerge_matches"] == "12/12"
    assert row["postmerge_matches"] == "12/12"


def test_sharded_scaling_curve(benchmark):
    result = run_experiment(
        benchmark,
        sharded_stream_replay,
        dataset_names=("rwp-small",),
        shard_counts=(1, 2, 4, 8),
        batch_ticks=8,
        num_queries=12,
    )
    assert [row["shards"] for row in result.rows] == [1, 2, 4, 8]
    events = {row["events"] for row in result.rows}
    assert len(events) == 1, "every shard count must drain the same stream"
    for row in result.rows:
        assert row["ingest_events_per_sec"] > 0
        assert row["mean_query_ms"] > 0
        # Sharded answers must agree with the batch reference evaluator at
        # every shard count (the cross-method equivalence contract).
        assert row["matches"] == "12/12"
