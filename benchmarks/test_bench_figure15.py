"""Benchmark: Figure 15 — CPU time of ReachGrid vs ReachGraph."""

from __future__ import annotations

from repro.experiments.figures import figure15_cpu_time

from conftest import run_experiment


def test_figure15_cpu_time(benchmark):
    result = run_experiment(
        benchmark,
        figure15_cpu_time,
        dataset_names=("rwp-small", "vn-small"),
        lengths=(100, 300),
        num_queries=10,
    )
    # ReachGraph precomputes reachability, so its per-query CPU time is far
    # below ReachGrid's join-at-query-time cost (Figure 15).
    total_grid = sum(row["reachgrid_cpu_ms"] for row in result.rows)
    total_graph = sum(row["reachgraph_cpu_ms"] for row in result.rows)
    assert total_graph < total_grid
