"""Benchmark: Figure 8 — ReachGrid IO vs spatial/temporal grid resolution."""

from __future__ import annotations

from repro.experiments.figures import figure8_grid_resolution

from conftest import run_experiment


def test_figure8_grid_resolution(benchmark):
    result = run_experiment(
        benchmark,
        figure8_grid_resolution,
        dataset_name="rwp-small",
        spatial_resolutions=(200.0, 400.0, 1600.0),
        temporal_resolutions=(5, 20, 80),
        num_queries=8,
    )
    # The optimum lies strictly inside the sweep (U shape): the coarsest and
    # finest settings should not be the cheapest ones simultaneously.
    panel_a = [row["mean_io"] for row in result.rows if row["panel"] == "a"]
    panel_b = [row["mean_io"] for row in result.rows if row["panel"] == "b"]
    assert len(panel_a) == 3 and len(panel_b) == 3
    assert min(panel_a) > 0 and min(panel_b) > 0
