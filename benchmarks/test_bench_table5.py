"""Benchmark: Table 5 — GRAIL versus ReachGraph (memory runtime and disk IO)."""

from __future__ import annotations

from repro.experiments.figures import table5_grail_comparison

from conftest import run_experiment


def test_table5_grail_comparison(benchmark):
    result = run_experiment(
        benchmark,
        table5_grail_comparison,
        dataset_names=("rwp-small", "vn-small"),
        num_queries=15,
        query_length=300,
    )
    disk_rows = [row for row in result.rows if row["panel"].startswith("b")]
    assert disk_rows
    # ReachGraph's partitioned layout beats GRAIL's creation-order layout on
    # disk IO (the paper reports 76% / 88%).
    for row in disk_rows:
        assert row["reachgraph"] <= row["grail"]
