"""Benchmark: Figure 13 — BM-BFS vs B-BFS vs E-DFS query processing."""

from __future__ import annotations

from repro.experiments.figures import figure13_traversal_strategies

from conftest import run_experiment


def test_figure13_traversal_strategies(benchmark):
    result = run_experiment(
        benchmark,
        figure13_traversal_strategies,
        dataset_names=("rwp-small", "vn-small"),
        num_queries=15,
    )
    for name in ("rwp-small", "vn-small"):
        by_strategy = {
            row["strategy"]: row for row in result.rows if row["dataset"] == name
        }
        # The multi-resolution bidirectional traversal never visits more
        # vertices than the plain bidirectional one, which in turn visits far
        # fewer than the naive external DFS.
        assert by_strategy["bm-bfs"]["mean_visited"] <= by_strategy["b-bfs"]["mean_visited"]
        assert by_strategy["b-bfs"]["mean_visited"] <= by_strategy["e-dfs"]["mean_visited"]
