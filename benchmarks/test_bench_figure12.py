"""Benchmark: Figure 12 — query IO vs disk-partition depth."""

from __future__ import annotations

from repro.experiments.figures import figure12_partition_depth

from conftest import run_experiment


def test_figure12_partition_depth(benchmark):
    result = run_experiment(
        benchmark,
        figure12_partition_depth,
        dataset_name="rwp-small",
        depths=(1, 4, 16, 64),
        num_queries=10,
    )
    ios = [row["mean_io"] for row in result.rows]
    partitions = [row["partitions"] for row in result.rows]
    # Deeper partitions -> fewer partitions overall.
    assert partitions == sorted(partitions, reverse=True)
    assert all(io > 0 for io in ios)
