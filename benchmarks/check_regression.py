#!/usr/bin/env python
"""Benchmark regression gate: fresh ``--benchmark-json`` vs committed baseline.

Usage::

    # gate (CI): fail when any benchmark's median slowed >30% vs baseline
    python benchmarks/check_regression.py bench-streaming.json

    # gate across machines of different speed: divide every ratio by the
    # geometric-mean ratio first, so only *relative* regressions fail
    python benchmarks/check_regression.py bench-streaming.json --normalize

    # refresh the committed baseline from a fresh run
    python benchmarks/check_regression.py bench-streaming.json --update

The committed baseline (``BENCH_streaming.json`` at the repo root) is a
distilled ``{benchmark name: median seconds}`` mapping, not the full
pytest-benchmark document — small enough to review in a diff, stable enough
to gate on.  The gate compares each benchmark's fresh median against its
baseline median and fails (exit code 1) when the slowdown exceeds the
threshold (default 30%).  A benchmark present in the baseline but missing
from the fresh run also fails: silently dropping a benchmark is how
regressions hide.  New benchmarks are reported and ignored until the
baseline is updated.

``--normalize`` exists because absolute medians encode the machine they were
recorded on: a uniformly slower CI runner would trip every benchmark at
once.  The machine factor is the *median* of the per-benchmark ratios — a
uniform shift moves the median and is cancelled, while a minority of
benchmarks regressing (or legitimately speeding up) leaves the median at the
common factor, so neither a regression dilutes its own gate nor a speedup
poisons the gates of untouched benchmarks.  The factor cannot absorb
arbitrarily much: past ``--max-machine-factor`` (default 2x) the gate fails
outright, because a shift that large is at least as likely a regression
hitting every benchmark (they all share the streaming hot path) as it is a
slower runner — re-baseline with ``--update`` on representative hardware to
clear it.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict

#: Default location of the committed baseline, relative to the repo root
#: (this file lives in ``benchmarks/``).
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def load_medians(benchmark_json: Path) -> Dict[str, float]:
    """Distill ``{name: median seconds}`` from either JSON layout.

    Accepts a full pytest-benchmark document (``{"benchmarks": [...]}``) or
    an already-distilled baseline mapping.
    """
    document = json.loads(benchmark_json.read_text(encoding="utf-8"))
    if isinstance(document, dict) and "benchmarks" in document:
        return {
            entry["name"]: float(entry["stats"]["median"])
            for entry in document["benchmarks"]
        }
    if isinstance(document, dict) and all(
        isinstance(value, (int, float)) for value in document.values()
    ):
        return {name: float(value) for name, value in document.items()}
    raise SystemExit(
        f"{benchmark_json}: neither a pytest-benchmark document nor a "
        "{name: median} baseline"
    )


def median_ratio(values) -> float:
    values = list(values)
    return statistics.median(values) if values else 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", type=Path, help="fresh pytest-benchmark --benchmark-json output"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline to gate against (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated median slowdown, as a fraction (default: 0.30)",
    )
    parser.add_argument(
        "--normalize",
        action="store_true",
        help=(
            "divide every slowdown ratio by the median ratio, cancelling a "
            "uniformly faster/slower machine (bounded by --max-machine-factor)"
        ),
    )
    parser.add_argument(
        "--max-machine-factor",
        type=float,
        default=2.0,
        help=(
            "fail when the --normalize machine factor exceeds this ratio: a "
            "shift that large may be a regression across every benchmark, not "
            "hardware (default: 2.0)"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the fresh run instead of gating",
    )
    args = parser.parse_args(argv)

    fresh = load_medians(args.fresh)
    if not fresh:
        print("no benchmarks in the fresh run", file=sys.stderr)
        return 1

    if args.update:
        args.baseline.write_text(
            json.dumps(dict(sorted(fresh.items())), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"baseline {args.baseline} updated with {len(fresh)} benchmark(s)")
        return 0

    if not args.baseline.exists():
        print(
            f"baseline {args.baseline} does not exist; create it with --update",
            file=sys.stderr,
        )
        return 1
    baseline = load_medians(args.baseline)

    ratios = {
        name: fresh[name] / baseline[name]
        for name in baseline
        if name in fresh and baseline[name] > 0
    }

    machine_factor = median_ratio(ratios.values()) if args.normalize else 1.0
    failures = []
    if args.normalize:
        print(f"machine factor (median ratio): {machine_factor:.3f}x")
        if machine_factor > args.max_machine_factor:
            failures.append(
                f"machine factor {machine_factor:.3f}x exceeds the "
                f"{args.max_machine_factor:.2f}x cap: either every benchmark "
                "regressed together or this machine differs too much from the "
                "baseline's — re-baseline with --update on representative "
                "hardware"
            )
        elif machine_factor > 1.0 + args.threshold:
            print(
                f"warning: machine factor {machine_factor:.3f}x exceeds the "
                f"per-benchmark threshold; a uniform regression up to the "
                f"{args.max_machine_factor:.2f}x cap would be absorbed"
            )
    for name in sorted(baseline):
        if name not in fresh:
            failures.append(f"{name}: present in baseline but missing from the fresh run")
            continue
        ratio = ratios[name] / machine_factor
        slowdown = ratio - 1.0
        status = "FAIL" if slowdown > args.threshold else "ok"
        print(
            f"[{status}] {name}: baseline {baseline[name]:.4f}s, "
            f"fresh {fresh[name]:.4f}s, adjusted ratio {ratio:.3f}x"
        )
        if slowdown > args.threshold:
            failures.append(
                f"{name}: median slowed {100.0 * slowdown:.1f}% "
                f"(> {100.0 * args.threshold:.0f}% threshold)"
            )
    for name in sorted(set(fresh) - set(baseline)):
        print(
            f"[new] {name}: {fresh[name]:.4f}s — not in the baseline; "
            "run with --update to start gating it"
        )

    if failures:
        print(
            f"\nbenchmark regression gate FAILED ({len(failures)} finding(s)):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate passed ({len(ratios)} benchmark(s) compared)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
