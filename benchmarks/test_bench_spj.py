"""Benchmark: Section 6.1.2 — ReachGrid versus the naive SPJ baseline."""

from __future__ import annotations

from repro.experiments.figures import reachgrid_vs_spj

from conftest import run_experiment


def test_reachgrid_vs_spj(benchmark):
    result = run_experiment(
        benchmark,
        reachgrid_vs_spj,
        dataset_names=("rwp-small", "vn-small"),
        num_queries=10,
    )
    # ReachGrid must beat the materialize-everything baseline on every dataset.
    for row in result.rows:
        assert row["reachgrid_mean_io"] < row["spj_mean_io"]
        assert row["improvement_pct"] > 0
