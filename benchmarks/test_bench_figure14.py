"""Benchmark: Figure 14 — ReachGrid vs ReachGraph across query-interval lengths."""

from __future__ import annotations

from repro.experiments.figures import figure14_reachgrid_vs_reachgraph

from conftest import run_experiment


def test_figure14_reachgrid_vs_reachgraph(benchmark):
    result = run_experiment(
        benchmark,
        figure14_reachgrid_vs_reachgraph,
        dataset_names=("rwp-small", "vn-small"),
        lengths=(100, 300, 500),
        num_queries=12,
    )
    # On the road-network data ReachGraph wins (the paper reports 63% on VN):
    vn_rows = [row for row in result.rows if row["dataset"] == "vn-small"]
    assert sum(row["reachgraph_mean_io"] for row in vn_rows) <= sum(
        row["reachgrid_mean_io"] for row in vn_rows
    )
    # ReachGrid's relative gap is smallest at the shortest query interval.
    rwp_rows = {row["query_length"]: row for row in result.rows if row["dataset"] == "rwp-small"}
    def gap(row):
        return row["reachgrid_mean_io"] / max(row["reachgraph_mean_io"], 1e-9)
    assert gap(rwp_rows[100]) <= gap(rwp_rows[500]) * 1.5
