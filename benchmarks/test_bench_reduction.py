"""Benchmark: Section 6.2.1.1 — reduction ratio of DN versus TEN."""

from __future__ import annotations

from repro.experiments.figures import reduction_ratio

from conftest import run_experiment


def test_reduction_ratio(benchmark):
    result = run_experiment(
        benchmark,
        reduction_ratio,
        dataset_names=("rwp-small", "vn-small"),
    )
    for row in result.rows:
        assert row["dn_vertices"] < row["ten_vertices"]
        assert row["dn_edges"] < row["ten_edges"]
        assert row["vertex_reduction_pct"] > 30.0
